//! Flow-based backend for the message–interval allocation stage.
//!
//! The allocation LP of `allocation_lp` (paper §5.2, constraints (3),(4))
//! is structurally a packing of message time into per-(link, interval)
//! capacities. This module reformulates each maximal related subset as a
//! **time-expanded min-cost-flow network** and solves it with successive
//! shortest paths — std-only, no simplex involved — which scales to
//! instances whose LPs would carry thousands of columns:
//!
//! * a source arc per message carrying its transmission time,
//! * one *chain* of arcs per (message, active interval): the message's
//!   flow for interval `A_k` traverses a capacity arc for every link on
//!   its path, charged against `capacity_scale · |A_k|` shared with every
//!   other message on that link,
//! * entry arcs cost the interval index (earlier intervals are cheaper),
//!   every other arc costs zero, so the min-cost solution is a
//!   deterministic early-packed split.
//!
//! # Kernel
//!
//! The augmenting search is successive shortest paths with **node
//! potentials**: a binary-heap Dijkstra over Johnson-reduced costs,
//! potentials initialized to zero once per subset network (every initial
//! residual cost is a non-negative interval index, so zero potentials are
//! valid — no warm-up Bellman–Ford) and *updated* after each augmentation
//! (`π[v] += min(dist[v], dist[t])`, which keeps every residual reduced
//! cost non-negative) instead of recomputed. The heap key is
//! `(distance bits, node id)`, so tie-breaking is deterministic and the
//! work counters are bit-stable at any `--parallelism`. All arc costs are
//! small integers, so distances, potentials, and reduced costs are
//! exactly-representable f64 integers — shortest-path identities below
//! hold under *exact* float equality, with no epsilon.
//!
//! The classical kernel — one full Bellman–Ford relaxation per
//! augmentation — is kept as [`FlowKernel::BellmanFordOracle`], the
//! differential oracle (exactly like dense-vs-sparse simplex). Both
//! kernels compute exact shortest distances and then feed one shared
//! **canonical predecessor extraction**: a BFS from the source over
//! *tight* residual arcs (`dist[u] + cost == dist[v]`, exact equality),
//! first visit in adjacency order wins. Tightness in reduced costs is
//! algebraically identical to tightness in raw costs, so both kernels
//! select the same augmenting path, push the same bottleneck, and leave
//! bit-identical residual networks — the extracted allocations are
//! bit-identical, not merely equal in objective (proptested in
//! `tests/proptests.rs`).
//!
//! Scratch memory (arc pool, adjacency, distance/potential arrays, heap)
//! lives in a [`FlowWorkspace`] reused across the per-subset solves of one
//! compile and across `repair()`/`sr-serve` admission ladders, mirroring
//! `AllocBasisCache` on the simplex side. The workspace carries no
//! semantic state between solves, so reuse is allocation-only and cannot
//! perturb results.
//!
//! # Exactness contract
//!
//! Any LP-feasible allocation routes along its own chains, so the network
//! always admits a full-value flow when the LP is feasible — a max flow
//! short of total demand is therefore an **exact** infeasibility verdict.
//! The converse direction is a relaxation: at a shared capacity node,
//! flow conservation lets flow *jump* from one message's chain to
//! another's, so a full-value flow can imply an extracted split that
//! oversubscribes a link the jump bypassed. The extracted matrix is
//! therefore re-checked against constraint (4) exactly; the rare subset
//! that fails the check falls back to the simplex oracle (counted in
//! [`FlowAllocStats::fallbacks`]). Chains of length one — the dominant
//! conflict pattern — cannot jump and never fall back.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use sr_tfg::{MessageId, TimeBounds};
use sr_topology::LinkId;

use crate::allocation_lp::{solve_subset_capacities, AllocationStats};
use crate::{ActivityMatrix, CompileError, IntervalAllocation, Intervals, PathAssignment, EPS};

/// Residual-capacity tolerance for the augmenting search, far below the
/// schedule-level [`EPS`].
const FLOW_EPS: f64 = 1e-9;

/// Which augmenting-search kernel drives the min-cost-flow solves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FlowKernel {
    /// Dijkstra over reduced costs with carried node potentials — the
    /// production kernel.
    #[default]
    SspDijkstra,
    /// Full Bellman–Ford relaxation per augmentation — the differential
    /// oracle. Bit-identical allocations to [`FlowKernel::SspDijkstra`]
    /// (shared canonical predecessor extraction), O(V·E) per augmentation.
    BellmanFordOracle,
}

/// Work counters for one flow-allocation pass, deterministic for fixed
/// inputs (the network build order, the heap tie-break, and the canonical
/// predecessor extraction are all input-ordered).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowAllocStats {
    /// Subset networks solved.
    pub solves: u64,
    /// Network nodes built across all subsets.
    pub nodes: u64,
    /// Forward arcs built across all subsets.
    pub arcs: u64,
    /// Shortest-path augmentations performed.
    pub augmentations: u64,
    /// Binary-heap pops across all Dijkstra runs (stale lazy-deletion
    /// entries included). Zero under [`FlowKernel::BellmanFordOracle`].
    pub dijkstra_pops: u64,
    /// Dijkstra runs that reused potentials carried from a previous
    /// augmentation of the same subset network instead of recomputing
    /// them from scratch — every augmentation after a solve's first.
    /// Zero under [`FlowKernel::BellmanFordOracle`].
    pub potential_reuse_hits: u64,
    /// Subsets whose extracted split violated constraint (4) (chain
    /// jumping) and were re-solved by the simplex oracle.
    pub fallbacks: u64,
}

/// One forward arc of the residual network; its reverse twin sits at
/// `index ^ 1`.
#[derive(Debug)]
struct Arc {
    to: usize,
    cap: f64,
    cost: f64,
}

/// Reusable scratch for the min-cost-flow kernel: the arc pool, adjacency
/// lists, distance/potential/predecessor arrays, the Dijkstra heap, and
/// the extraction queue. Create one per compile ladder (or hold one per
/// tenant/repair session) and pass it to every flow allocation — buffers
/// are recycled across subset solves, so steady-state solves allocate
/// nothing. The workspace carries no semantic state between solves
/// (potentials are re-initialized per subset network); reuse is purely an
/// allocation cache and cannot change any result bit.
#[derive(Debug, Default)]
pub struct FlowWorkspace {
    arcs: Vec<Arc>,
    /// Adjacency lists; only the first `nodes` entries are live. Entries
    /// beyond the live prefix are empty (cleared on reset), so growing
    /// into them is safe.
    adj: Vec<Vec<usize>>,
    nodes: usize,
    dist: Vec<f64>,
    pot: Vec<f64>,
    prev: Vec<usize>,
    seen: Vec<bool>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    queue: VecDeque<usize>,
}

impl FlowWorkspace {
    /// An empty workspace; buffers grow to the largest subset network
    /// solved through it and are then reused.
    pub fn new() -> Self {
        FlowWorkspace::default()
    }

    /// Clears the network back to `nodes` isolated nodes, keeping every
    /// buffer's capacity.
    fn reset_net(&mut self, nodes: usize) {
        self.arcs.clear();
        for a in &mut self.adj[..self.nodes] {
            a.clear();
        }
        if self.adj.len() < nodes {
            self.adj.resize_with(nodes, Vec::new);
        }
        self.nodes = nodes;
    }

    fn add_node(&mut self) -> usize {
        let id = self.nodes;
        if self.adj.len() == id {
            self.adj.push(Vec::new());
        }
        self.nodes = id + 1;
        id
    }

    fn add_arc(&mut self, from: usize, to: usize, cap: f64, cost: f64) -> usize {
        let i = self.arcs.len();
        self.arcs.push(Arc { to, cap, cost });
        self.arcs.push(Arc {
            to: from,
            cap: 0.0,
            cost: -cost,
        });
        self.adj[from].push(i);
        self.adj[to].push(i + 1);
        i
    }

    /// Flow carried by forward arc `ai` (its reverse twin's residual).
    fn flow(&self, ai: usize) -> f64 {
        self.arcs[ai ^ 1].cap
    }

    /// Successive-shortest-paths max flow from `s` to `t`; returns the
    /// value pushed. Both kernels compute exact distances and share the
    /// canonical predecessor extraction, so the augmentation sequence —
    /// and the final residual network — is kernel-independent.
    fn max_flow_min_cost(
        &mut self,
        s: usize,
        t: usize,
        kernel: FlowKernel,
        stats: &mut FlowAllocStats,
    ) -> f64 {
        let n = self.nodes;
        if self.dist.len() < n {
            self.dist.resize(n, 0.0);
            self.pot.resize(n, 0.0);
            self.prev.resize(n, usize::MAX);
            self.seen.resize(n, false);
        }
        // Potentials are initialized once per subset network: every
        // initial residual cost is a non-negative interval index, so zero
        // potentials are already valid (no warm-up Bellman–Ford needed).
        self.pot[..n].fill(0.0);
        let mut pushed = 0.0f64;
        let mut first = true;
        loop {
            match kernel {
                FlowKernel::SspDijkstra => {
                    if !first {
                        stats.potential_reuse_hits += 1;
                    }
                    self.dijkstra(s, stats);
                }
                FlowKernel::BellmanFordOracle => self.bellman_ford(s),
            }
            first = false;
            if self.dist[t].is_infinite() {
                return pushed;
            }
            self.extract_predecessors(s, t, kernel);

            // Bottleneck along the canonical path, then augment.
            let mut bottleneck = f64::INFINITY;
            let mut v = t;
            while v != s {
                let ai = self.prev[v];
                bottleneck = bottleneck.min(self.arcs[ai].cap);
                v = self.arcs[ai ^ 1].to;
            }
            let mut v = t;
            while v != s {
                let ai = self.prev[v];
                self.arcs[ai].cap -= bottleneck;
                self.arcs[ai ^ 1].cap += bottleneck;
                v = self.arcs[ai ^ 1].to;
            }

            if kernel == FlowKernel::SspDijkstra {
                // π[v] += min(dist[v], dist[t]) keeps every residual arc's
                // reduced cost non-negative: unreachable tails shift by
                // the full dist[t] (their residual arcs can only point at
                // nodes shifted by at most that much), and reachable
                // pairs inherit the triangle inequality. Augmenting-path
                // arcs land at reduced cost exactly zero, so their new
                // reverse twins are valid too.
                let dt = self.dist[t];
                for v in 0..n {
                    let dv = self.dist[v];
                    self.pot[v] += if dv < dt { dv } else { dt };
                }
            }
            stats.augmentations += 1;
            pushed += bottleneck;
        }
    }

    /// Binary-heap Dijkstra over reduced costs. Runs to heap exhaustion
    /// (no early exit at `t`): every reachable node's distance must be
    /// exact for the canonical tight-arc extraction to match the oracle's.
    /// The heap key is `(distance bits, node id)` — for non-negative
    /// floats the bit pattern orders like the value, and the id breaks
    /// ties deterministically.
    fn dijkstra(&mut self, s: usize, stats: &mut FlowAllocStats) {
        let FlowWorkspace {
            arcs,
            adj,
            nodes,
            dist,
            pot,
            heap,
            ..
        } = self;
        let n = *nodes;
        dist[..n].fill(f64::INFINITY);
        dist[s] = 0.0;
        heap.clear();
        heap.push(Reverse((0.0f64.to_bits(), s)));
        while let Some(Reverse((bits, u))) = heap.pop() {
            stats.dijkstra_pops += 1;
            let d = f64::from_bits(bits);
            if d > dist[u] {
                continue; // stale lazy-deletion entry
            }
            for &ai in &adj[u] {
                let a = &arcs[ai];
                if a.cap <= FLOW_EPS {
                    continue;
                }
                let rc = a.cost + pot[u] - pot[a.to];
                debug_assert!(rc >= 0.0, "negative reduced cost {rc} on arc {ai}");
                let nd = d + rc;
                if nd < dist[a.to] {
                    dist[a.to] = nd;
                    heap.push(Reverse((nd.to_bits(), a.to)));
                }
            }
        }
    }

    /// The oracle kernel's distance pass: Bellman–Ford over raw residual
    /// costs, relaxing arcs in build order until a fixed point. Costs are
    /// exact integers, so strict improvement needs no epsilon and the
    /// fixed point is the exact distance vector.
    fn bellman_ford(&mut self, s: usize) {
        let FlowWorkspace {
            arcs,
            adj,
            nodes,
            dist,
            ..
        } = self;
        let n = *nodes;
        dist[..n].fill(f64::INFINITY);
        dist[s] = 0.0;
        for _ in 0..n {
            let mut improved = false;
            for u in 0..n {
                if dist[u].is_infinite() {
                    continue;
                }
                for &ai in &adj[u] {
                    let a = &arcs[ai];
                    if a.cap > FLOW_EPS && dist[u] + a.cost < dist[a.to] {
                        dist[a.to] = dist[u] + a.cost;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }

    /// Canonical predecessor extraction, shared by both kernels: BFS from
    /// `s` over *tight* residual arcs (`dist[u] + cost == dist[v]`, exact
    /// float equality on exactly-representable integers), first visit in
    /// adjacency order wins. Raw-cost tightness and reduced-cost
    /// tightness pick out the same arc set (the potential terms cancel
    /// along any comparison of true distances), so the BFS tree — and the
    /// augmenting path it yields — is identical under either kernel.
    fn extract_predecessors(&mut self, s: usize, t: usize, kernel: FlowKernel) {
        let FlowWorkspace {
            arcs,
            adj,
            nodes,
            dist,
            pot,
            prev,
            seen,
            queue,
            ..
        } = self;
        let n = *nodes;
        prev[..n].fill(usize::MAX);
        seen[..n].fill(false);
        queue.clear();
        seen[s] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            if u == t {
                break;
            }
            for &ai in &adj[u] {
                let a = &arcs[ai];
                if a.cap <= FLOW_EPS || seen[a.to] {
                    continue;
                }
                let c = match kernel {
                    FlowKernel::SspDijkstra => a.cost + pot[u] - pot[a.to],
                    FlowKernel::BellmanFordOracle => a.cost,
                };
                if dist[u] + c == dist[a.to] {
                    seen[a.to] = true;
                    prev[a.to] = ai;
                    queue.push_back(a.to);
                }
            }
        }
        debug_assert!(
            seen[t],
            "t has a finite distance but no tight path reached it"
        );
    }
}

/// Solves the message–interval allocation with the flow backend: same
/// inputs, same feasibility verdict, and the same constraint guarantees as
/// [`crate::allocate_intervals`], but each subset is solved as a
/// min-cost-flow network instead of an LP (falling back to the simplex for
/// the rare subset where the relaxation is loose — see the module docs).
///
/// `ws` is the reusable kernel scratch — pass the same workspace across
/// the solves of one compile ladder to amortize its buffers. `lp_stats`
/// accumulates the work of any fallback solves so the compile pipeline's
/// `alloc_lp.*` counters stay meaningful under this engine.
///
/// # Errors
///
/// [`CompileError::AllocationInfeasible`] when a subset has no feasible
/// split (the flow verdict is exact); [`CompileError::Lp`] on fallback
/// solver trouble.
#[allow(clippy::too_many_arguments)]
pub fn allocate_intervals_flow(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    capacity_scale: f64,
    ws: &mut FlowWorkspace,
    stats: &mut FlowAllocStats,
    lp_stats: &mut AllocationStats,
) -> Result<IntervalAllocation, CompileError> {
    allocate_intervals_flow_with_kernel(
        assignment,
        bounds,
        activity,
        intervals,
        subsets,
        capacity_scale,
        FlowKernel::SspDijkstra,
        ws,
        stats,
        lp_stats,
    )
}

/// [`allocate_intervals_flow`] with an explicit kernel choice — the entry
/// point the differential tests use to pit the production Dijkstra kernel
/// against the Bellman–Ford oracle on identical inputs.
///
/// # Errors
///
/// As [`allocate_intervals_flow`].
#[allow(clippy::too_many_arguments)]
pub fn allocate_intervals_flow_with_kernel(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    capacity_scale: f64,
    kernel: FlowKernel,
    ws: &mut FlowWorkspace,
    stats: &mut FlowAllocStats,
    lp_stats: &mut AllocationStats,
) -> Result<IntervalAllocation, CompileError> {
    let mut p = vec![vec![0.0; intervals.len()]; assignment.len()];
    for subset in subsets {
        solve_subset_flow(
            assignment,
            bounds,
            activity,
            subset,
            |_, k| capacity_scale * intervals.length(k),
            kernel,
            ws,
            &mut p,
            stats,
            lp_stats,
        )?;
    }
    Ok(IntervalAllocation::from_matrix(p))
}

/// Flow-backend counterpart of
/// [`crate::allocation_lp::allocate_intervals_pinned_reserved`]: re-derives
/// only the `affected` rows, with every other row pinned bit-identically
/// and charged — together with the `reserved` external capacity — against
/// each (link, interval) budget. This is the allocation step of the
/// repack/admission ladders under `AllocEngine::Flow`; `ws` should be the
/// session-held workspace so repeated repairs/admissions reuse its
/// buffers.
///
/// # Errors
///
/// As [`allocate_intervals_flow`].
///
/// # Panics
///
/// If `pinned` does not match the assignment, or a `reserved` row's length
/// is not `intervals.len()`.
#[allow(clippy::too_many_arguments)]
pub fn allocate_intervals_pinned_reserved_flow(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    affected: &[MessageId],
    pinned: &IntervalAllocation,
    reserved: &std::collections::HashMap<LinkId, Vec<f64>>,
    capacity_scale: f64,
    ws: &mut FlowWorkspace,
    stats: &mut FlowAllocStats,
    lp_stats: &mut AllocationStats,
) -> Result<IntervalAllocation, CompileError> {
    assert_eq!(
        pinned.num_messages(),
        assignment.len(),
        "pinned allocation does not match the assignment"
    );
    for row in reserved.values() {
        assert_eq!(
            row.len(),
            intervals.len(),
            "external reservation row does not cover every interval"
        );
    }
    let is_affected: Vec<bool> = {
        let mut v = vec![false; assignment.len()];
        for &m in affected {
            v[m.index()] = true;
        }
        v
    };

    // Start from the pinned matrix; blank what must be re-derived
    // (affected rows) or cannot carry traffic (link-less rows).
    let mut p = vec![vec![0.0; intervals.len()]; assignment.len()];
    for i in 0..assignment.len() {
        if !is_affected[i] && !assignment.links(MessageId(i)).is_empty() {
            p[i].clone_from_slice(pinned.row(MessageId(i)));
        }
    }

    // Capacity already consumed by pinned traffic, per link per interval.
    let mut pinned_used: std::collections::HashMap<LinkId, Vec<f64>> =
        std::collections::HashMap::new();
    for i in 0..assignment.len() {
        let m = MessageId(i);
        if is_affected[i] {
            continue;
        }
        for &l in assignment.links(m) {
            let row = pinned_used
                .entry(l)
                .or_insert_with(|| vec![0.0; intervals.len()]);
            for (k, r) in row.iter_mut().enumerate() {
                *r += p[i][k];
            }
        }
    }

    for subset in subsets {
        let members: Vec<MessageId> = subset
            .iter()
            .copied()
            .filter(|m| is_affected[m.index()])
            .collect();
        if members.is_empty() {
            continue;
        }
        solve_subset_flow(
            assignment,
            bounds,
            activity,
            &members,
            |link, k| {
                let used = pinned_used.get(&link).map_or(0.0, |r| r[k])
                    + reserved.get(&link).map_or(0.0, |r| r[k]);
                (capacity_scale * intervals.length(k) - used).max(0.0)
            },
            FlowKernel::SspDijkstra,
            ws,
            &mut p,
            stats,
            lp_stats,
        )?;
    }
    Ok(IntervalAllocation::from_matrix(p))
}

#[allow(clippy::too_many_arguments)]
fn solve_subset_flow<C>(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    subset: &[MessageId],
    capacity: C,
    kernel: FlowKernel,
    ws: &mut FlowWorkspace,
    p: &mut [Vec<f64>],
    stats: &mut FlowAllocStats,
    lp_stats: &mut AllocationStats,
) -> Result<(), CompileError>
where
    C: Fn(LinkId, usize) -> f64,
{
    // A member without links cannot be expressed as a chain; related
    // subsets never contain one, but stay safe and defer to the LP.
    if subset.iter().any(|&m| assignment.links(m).is_empty()) {
        return solve_fallback(
            assignment, bounds, activity, subset, &capacity, p, stats, lp_stats,
        );
    }

    let actives: Vec<Vec<usize>> = subset
        .iter()
        .map(|&m| activity.active_intervals(m))
        .collect();
    let durations: Vec<f64> = subset
        .iter()
        .map(|&m| bounds.window(m).duration())
        .collect();
    let total: f64 = durations.iter().sum();

    // Nodes: source, sink, one per member, then (link, interval) capacity
    // pairs created in ascending (link, interval) order.
    ws.reset_net(2 + subset.len());
    let (source, sink) = (0usize, 1usize);
    let member_node = |mi: usize| 2 + mi;

    let mut on_link: std::collections::BTreeMap<LinkId, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (mi, &m) in subset.iter().enumerate() {
        for &l in assignment.links(m) {
            on_link.entry(l).or_default().push(mi);
        }
    }
    // cap_arc[(link, k)] -> (in node, capacity arc index); the out node is
    // the arc's head.
    let mut cap_arc: std::collections::HashMap<(LinkId, usize), (usize, usize)> =
        std::collections::HashMap::new();
    let mut link_ks: Vec<usize> = Vec::new();
    for (&link, members) in &on_link {
        link_ks.clear();
        for &mi in members {
            link_ks.extend_from_slice(&actives[mi]);
        }
        link_ks.sort_unstable();
        link_ks.dedup();
        for &k in &link_ks {
            let input = ws.add_node();
            let output = ws.add_node();
            let ai = ws.add_arc(input, output, capacity(link, k), 0.0);
            cap_arc.insert((link, k), (input, ai));
        }
    }

    // Source and chain arcs, member-major then interval-major. Transfer
    // and exit arcs are deduplicated — messages sharing consecutive links
    // share them.
    let mut entry_arcs: Vec<Vec<usize>> = vec![Vec::new(); subset.len()];
    let mut seen_transfer: std::collections::HashSet<(usize, usize)> =
        std::collections::HashSet::new();
    for (mi, &m) in subset.iter().enumerate() {
        ws.add_arc(source, member_node(mi), durations[mi], 0.0);
        let links = assignment.links(m);
        for &k in &actives[mi] {
            let first_in = cap_arc[&(links[0], k)].0;
            entry_arcs[mi].push(ws.add_arc(member_node(mi), first_in, durations[mi], k as f64));
            for w in links.windows(2) {
                let from_out = ws.arcs[cap_arc[&(w[0], k)].1].to;
                let to_in = cap_arc[&(w[1], k)].0;
                if seen_transfer.insert((from_out, to_in)) {
                    ws.add_arc(from_out, to_in, total, 0.0);
                }
            }
            let last_out = ws.arcs[cap_arc[&(links[links.len() - 1], k)].1].to;
            if seen_transfer.insert((last_out, sink)) {
                ws.add_arc(last_out, sink, total, 0.0);
            }
        }
    }

    stats.solves += 1;
    stats.nodes += ws.nodes as u64;
    stats.arcs += (ws.arcs.len() / 2) as u64;
    let value = ws.max_flow_min_cost(source, sink, kernel, stats);
    if value < total - EPS {
        // Exact verdict: an LP-feasible split always induces a full flow.
        return Err(CompileError::AllocationInfeasible {
            subset: subset.to_vec(),
        });
    }

    // Extract the split from the entry arcs; conservation at the member
    // node makes each row sum to its duration (up to augmentation
    // rounding, absorbed into the largest entry).
    let mut x: Vec<Vec<f64>> = Vec::with_capacity(subset.len());
    for (mi, ks) in actives.iter().enumerate() {
        let mut row: Vec<f64> = ks
            .iter()
            .zip(&entry_arcs[mi])
            .map(|(_, &ai)| ws.flow(ai))
            .collect();
        let shortfall = durations[mi] - row.iter().sum::<f64>();
        if shortfall.abs() > FLOW_EPS {
            if let Some(big) = (0..row.len()).max_by(|&a, &b| row[a].total_cmp(&row[b])) {
                row[big] += shortfall;
            }
        }
        x.push(row);
    }

    // Exact constraint-(4) re-check: chain jumping can undercharge a link.
    let exact = on_link.iter().all(|(&link, members)| {
        link_ks.clear();
        for &mi in members {
            link_ks.extend_from_slice(&actives[mi]);
        }
        link_ks.sort_unstable();
        link_ks.dedup();
        link_ks.iter().all(|&k| {
            let used: f64 = members
                .iter()
                .filter_map(|&mi| {
                    actives[mi]
                        .iter()
                        .position(|&ak| ak == k)
                        .map(|pos| x[mi][pos])
                })
                .sum();
            used <= capacity(link, k) + EPS
        })
    });
    if !exact {
        return solve_fallback(
            assignment, bounds, activity, subset, &capacity, p, stats, lp_stats,
        );
    }

    for (mi, &m) in subset.iter().enumerate() {
        for (pos, &k) in actives[mi].iter().enumerate() {
            if x[mi][pos] > EPS {
                p[m.index()][k] = x[mi][pos];
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn solve_fallback<C>(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    subset: &[MessageId],
    capacity: &C,
    p: &mut [Vec<f64>],
    stats: &mut FlowAllocStats,
    lp_stats: &mut AllocationStats,
) -> Result<(), CompileError>
where
    C: Fn(LinkId, usize) -> f64,
{
    stats.fallbacks += 1;
    solve_subset_capacities(
        assignment, bounds, activity, subset, capacity, p, None, lp_stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{allocate_intervals, related_subsets};
    use sr_mapping::Allocation;
    use sr_tfg::{assign_time_bounds, TfgBuilder, Timing, WindowPolicy};
    use sr_topology::{GeneralizedHypercube, NodeId};

    struct Fixture {
        assignment: PathAssignment,
        bounds: TimeBounds,
        activity: ActivityMatrix,
        intervals: Intervals,
        subsets: Vec<Vec<MessageId>>,
    }

    fn shared_link(period: f64, bytes: u64) -> Fixture {
        let topo = GeneralizedHypercube::binary(1).unwrap();
        let mut b = TfgBuilder::new();
        let t0 = b.task("t0", 500);
        let t1 = b.task("t1", 500);
        let t2 = b.task("t2", 500);
        b.message("m0", t0, t1, bytes).unwrap();
        b.message("m1", t1, t2, bytes).unwrap();
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1), NodeId(0)], &tfg, &topo).unwrap();
        let bounds = assign_time_bounds(&tfg, &timing, period, WindowPolicy::LongestTask).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let assignment = PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
        let subsets = related_subsets(&assignment, &activity);
        Fixture {
            assignment,
            bounds,
            activity,
            intervals,
            subsets,
        }
    }

    fn flow_alloc(f: &Fixture, scale: f64) -> Result<IntervalAllocation, CompileError> {
        allocate_intervals_flow(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            scale,
            &mut FlowWorkspace::new(),
            &mut FlowAllocStats::default(),
            &mut AllocationStats::default(),
        )
    }

    fn kernel_alloc(
        f: &Fixture,
        scale: f64,
        kernel: FlowKernel,
        ws: &mut FlowWorkspace,
        stats: &mut FlowAllocStats,
    ) -> Result<IntervalAllocation, CompileError> {
        allocate_intervals_flow_with_kernel(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            scale,
            kernel,
            ws,
            stats,
            &mut AllocationStats::default(),
        )
    }

    fn check_constraints(f: &Fixture, alloc: &IntervalAllocation, scale: f64) {
        for m in 0..f.assignment.len() {
            let m = MessageId(m);
            if f.assignment.links(m).is_empty() {
                continue;
            }
            assert!(
                (alloc.total(m) - f.bounds.window(m).duration()).abs() < 1e-6,
                "(3) violated for {m}"
            );
            for k in 0..f.intervals.len() {
                if alloc.allocated(m, k) > EPS {
                    assert!(f.activity.is_active(m, k), "inactive allocation {m}@{k}");
                }
            }
        }
        for k in 0..f.intervals.len() {
            let sum: f64 = (0..f.assignment.len())
                .filter(|&i| !f.assignment.links(MessageId(i)).is_empty())
                .map(|i| alloc.allocated(MessageId(i), k))
                .sum();
            assert!(
                sum <= scale * f.intervals.length(k) + 1e-6,
                "(4) violated in interval {k}: {sum}"
            );
        }
    }

    #[test]
    fn flow_matches_simplex_verdict_feasible() {
        let f = shared_link(50.0, 640);
        let flow = flow_alloc(&f, 1.0).unwrap();
        check_constraints(&f, &flow, 1.0);
        // Simplex agrees on feasibility.
        assert!(allocate_intervals(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            1.0
        )
        .is_ok());
    }

    #[test]
    fn flow_matches_simplex_verdict_infeasible() {
        let f = shared_link(50.0, 1920); // 30+30 µs over a 50 µs frame
        let err = flow_alloc(&f, 1.0).unwrap_err();
        assert!(matches!(err, CompileError::AllocationInfeasible { .. }));
        assert!(allocate_intervals(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            1.0
        )
        .is_err());
    }

    #[test]
    fn flow_respects_capacity_scale() {
        let f = shared_link(50.0, 1280); // 20+20 µs: fits at 1.0, not at 0.5
        assert!(flow_alloc(&f, 1.0).is_ok());
        let err = flow_alloc(&f, 0.5).unwrap_err();
        assert!(matches!(err, CompileError::AllocationInfeasible { .. }));
    }

    #[test]
    fn multi_interval_split_is_valid() {
        let f = shared_link(120.0, 640);
        let alloc = flow_alloc(&f, 1.0).unwrap();
        check_constraints(&f, &alloc, 1.0);
    }

    #[test]
    fn stats_count_network_work() {
        let f = shared_link(50.0, 640);
        let mut stats = FlowAllocStats::default();
        allocate_intervals_flow(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            1.0,
            &mut FlowWorkspace::new(),
            &mut stats,
            &mut AllocationStats::default(),
        )
        .unwrap();
        assert!(stats.solves >= 1);
        assert!(stats.arcs > 0);
        assert!(stats.augmentations > 0);
        assert!(stats.dijkstra_pops > 0);
        assert_eq!(stats.fallbacks, 0);
    }

    #[test]
    fn dijkstra_matches_bellman_ford_oracle_bitwise() {
        for (period, bytes) in [(50.0, 640), (120.0, 640), (50.0, 1280), (90.0, 960)] {
            let f = shared_link(period, bytes);
            let mut dk = FlowAllocStats::default();
            let mut bf = FlowAllocStats::default();
            let a = kernel_alloc(
                &f,
                1.0,
                FlowKernel::SspDijkstra,
                &mut FlowWorkspace::new(),
                &mut dk,
            )
            .unwrap();
            let b = kernel_alloc(
                &f,
                1.0,
                FlowKernel::BellmanFordOracle,
                &mut FlowWorkspace::new(),
                &mut bf,
            )
            .unwrap();
            for m in 0..f.assignment.len() {
                for k in 0..f.intervals.len() {
                    let (x, y) = (a.allocated(MessageId(m), k), b.allocated(MessageId(m), k));
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "kernel divergence at ({m},{k}): {x} vs {y}"
                    );
                }
            }
            // Same augmentation sequence, but only Dijkstra pays the heap.
            assert_eq!(dk.augmentations, bf.augmentations);
            assert!(dk.dijkstra_pops > 0);
            assert_eq!(bf.dijkstra_pops, 0);
            assert_eq!(bf.potential_reuse_hits, 0);
        }
    }

    #[test]
    fn workspace_reuse_is_bit_stable() {
        // Same workspace across repeated solves (the ladder pattern) must
        // give the same bits as a fresh workspace each time.
        let f = shared_link(120.0, 640);
        let mut shared = FlowWorkspace::new();
        let mut stats = FlowAllocStats::default();
        let fresh = kernel_alloc(
            &f,
            1.0,
            FlowKernel::SspDijkstra,
            &mut FlowWorkspace::new(),
            &mut FlowAllocStats::default(),
        )
        .unwrap();
        for _ in 0..3 {
            let again =
                kernel_alloc(&f, 1.0, FlowKernel::SspDijkstra, &mut shared, &mut stats).unwrap();
            for m in 0..f.assignment.len() {
                for k in 0..f.intervals.len() {
                    assert_eq!(
                        again.allocated(MessageId(m), k).to_bits(),
                        fresh.allocated(MessageId(m), k).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn pinned_reserved_flow_matches_simplex_pinned() {
        use crate::allocation_lp::allocate_intervals_pinned_reserved;
        let f = shared_link(120.0, 640);
        let full = flow_alloc(&f, 1.0).unwrap();
        // Re-derive only m1 with m0 pinned; both backends must agree the
        // residual problem is feasible and respect the pinned rows.
        let affected = vec![MessageId(1)];
        let reserved = std::collections::HashMap::new();
        let by_flow = allocate_intervals_pinned_reserved_flow(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            &affected,
            &full,
            &reserved,
            1.0,
            &mut FlowWorkspace::new(),
            &mut FlowAllocStats::default(),
            &mut AllocationStats::default(),
        )
        .unwrap();
        let by_lp = allocate_intervals_pinned_reserved(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            &affected,
            &full,
            &reserved,
            1.0,
            None,
            &mut AllocationStats::default(),
        )
        .unwrap();
        check_constraints(&f, &by_flow, 1.0);
        // Pinned rows survive bit-identically under both backends.
        for k in 0..f.intervals.len() {
            assert_eq!(
                by_flow.allocated(MessageId(0), k).to_bits(),
                full.allocated(MessageId(0), k).to_bits()
            );
            assert_eq!(
                by_lp.allocated(MessageId(0), k).to_bits(),
                full.allocated(MessageId(0), k).to_bits()
            );
        }
    }
}
