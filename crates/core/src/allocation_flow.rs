//! Flow-based backend for the message–interval allocation stage.
//!
//! The allocation LP of `allocation_lp` (paper §5.2, constraints (3),(4))
//! is structurally a packing of message time into per-(link, interval)
//! capacities. This module reformulates each maximal related subset as a
//! **time-expanded min-cost-flow network** and solves it with successive
//! shortest paths — std-only, no simplex involved — which scales to
//! instances whose LPs would carry thousands of columns:
//!
//! * a source arc per message carrying its transmission time,
//! * one *chain* of arcs per (message, active interval): the message's
//!   flow for interval `A_k` traverses a capacity arc for every link on
//!   its path, charged against `capacity_scale · |A_k|` shared with every
//!   other message on that link,
//! * entry arcs cost the interval index (earlier intervals are cheaper),
//!   every other arc costs zero, so the min-cost solution is a
//!   deterministic early-packed split.
//!
//! Exactness contract. Any LP-feasible allocation routes along its own
//! chains, so the network always admits a full-value flow when the LP is
//! feasible — a max flow short of total demand is therefore an **exact**
//! infeasibility verdict. The converse direction is a relaxation: at a
//! shared capacity node, flow conservation lets flow *jump* from one
//! message's chain to another's, so a full-value flow can imply an
//! extracted split that oversubscribes a link the jump bypassed. The
//! extracted matrix is therefore re-checked against constraint (4)
//! exactly; the rare subset that fails the check falls back to the
//! simplex oracle (counted in [`FlowAllocStats::fallbacks`]). Chains of
//! length one — the dominant conflict pattern — cannot jump and never
//! fall back.

use sr_tfg::{MessageId, TimeBounds};
use sr_topology::LinkId;

use crate::allocation_lp::{solve_subset_capacities, AllocationStats};
use crate::{ActivityMatrix, CompileError, IntervalAllocation, Intervals, PathAssignment, EPS};

/// Residual-capacity tolerance for the augmenting search, far below the
/// schedule-level [`EPS`].
const FLOW_EPS: f64 = 1e-9;

/// Work counters for one flow-allocation pass, deterministic for fixed
/// inputs (the network build order and the augmenting search are both
/// input-ordered).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowAllocStats {
    /// Subset networks solved.
    pub solves: u64,
    /// Network nodes built across all subsets.
    pub nodes: u64,
    /// Forward arcs built across all subsets.
    pub arcs: u64,
    /// Shortest-path augmentations performed.
    pub augmentations: u64,
    /// Subsets whose extracted split violated constraint (4) (chain
    /// jumping) and were re-solved by the simplex oracle.
    pub fallbacks: u64,
}

/// Solves the message–interval allocation with the flow backend: same
/// inputs, same feasibility verdict, and the same constraint guarantees as
/// [`crate::allocate_intervals`], but each subset is solved as a
/// min-cost-flow network instead of an LP (falling back to the simplex for
/// the rare subset where the relaxation is loose — see the module docs).
///
/// `lp_stats` accumulates the work of any fallback solves so the compile
/// pipeline's `alloc_lp.*` counters stay meaningful under this engine.
///
/// # Errors
///
/// [`CompileError::AllocationInfeasible`] when a subset has no feasible
/// split (the flow verdict is exact); [`CompileError::Lp`] on fallback
/// solver trouble.
#[allow(clippy::too_many_arguments)]
pub fn allocate_intervals_flow(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    capacity_scale: f64,
    stats: &mut FlowAllocStats,
    lp_stats: &mut AllocationStats,
) -> Result<IntervalAllocation, CompileError> {
    let mut p = vec![vec![0.0; intervals.len()]; assignment.len()];
    for subset in subsets {
        solve_subset_flow(
            assignment,
            bounds,
            activity,
            intervals,
            subset,
            capacity_scale,
            &mut p,
            stats,
            lp_stats,
        )?;
    }
    Ok(IntervalAllocation::from_matrix(p))
}

/// One forward arc of the residual network; its reverse twin sits at
/// `index ^ 1`.
struct Arc {
    to: usize,
    cap: f64,
    cost: f64,
}

/// A tiny min-cost-flow network solved by successive shortest paths
/// (Bellman–Ford per augmentation — subset networks are small and may
/// carry negative residual costs).
struct FlowNet {
    arcs: Vec<Arc>,
    adj: Vec<Vec<usize>>,
}

impl FlowNet {
    fn new(nodes: usize) -> Self {
        FlowNet {
            arcs: Vec::new(),
            adj: vec![Vec::new(); nodes],
        }
    }

    fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    fn add_arc(&mut self, from: usize, to: usize, cap: f64, cost: f64) -> usize {
        let i = self.arcs.len();
        self.arcs.push(Arc { to, cap, cost });
        self.arcs.push(Arc {
            to: from,
            cap: 0.0,
            cost: -cost,
        });
        self.adj[from].push(i);
        self.adj[to].push(i + 1);
        i
    }

    /// Successive-shortest-paths max flow from `s` to `t`; returns the
    /// value pushed. Deterministic: Bellman–Ford relaxes arcs in build
    /// order with strict improvement, so path selection is input-ordered.
    fn max_flow_min_cost(&mut self, s: usize, t: usize, stats: &mut FlowAllocStats) -> f64 {
        let n = self.adj.len();
        let mut pushed = 0.0f64;
        loop {
            let mut dist = vec![f64::INFINITY; n];
            let mut prev: Vec<Option<usize>> = vec![None; n];
            dist[s] = 0.0;
            for _ in 0..n {
                let mut improved = false;
                for u in 0..n {
                    if dist[u].is_infinite() {
                        continue;
                    }
                    for &ai in &self.adj[u] {
                        let a = &self.arcs[ai];
                        if a.cap > FLOW_EPS && dist[u] + a.cost < dist[a.to] - FLOW_EPS {
                            dist[a.to] = dist[u] + a.cost;
                            prev[a.to] = Some(ai);
                            improved = true;
                        }
                    }
                }
                if !improved {
                    break;
                }
            }
            if prev[t].is_none() {
                return pushed;
            }
            // Bottleneck along the path, then augment.
            let mut bottleneck = f64::INFINITY;
            let mut v = t;
            while let Some(ai) = prev[v] {
                bottleneck = bottleneck.min(self.arcs[ai].cap);
                v = self.arcs[ai ^ 1].to;
            }
            let mut v = t;
            while let Some(ai) = prev[v] {
                self.arcs[ai].cap -= bottleneck;
                self.arcs[ai ^ 1].cap += bottleneck;
                v = self.arcs[ai ^ 1].to;
            }
            stats.augmentations += 1;
            pushed += bottleneck;
        }
    }

    /// Flow carried by forward arc `ai` (its reverse twin's residual).
    fn flow(&self, ai: usize) -> f64 {
        self.arcs[ai ^ 1].cap
    }
}

#[allow(clippy::too_many_arguments)]
fn solve_subset_flow(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    intervals: &Intervals,
    subset: &[MessageId],
    capacity_scale: f64,
    p: &mut [Vec<f64>],
    stats: &mut FlowAllocStats,
    lp_stats: &mut AllocationStats,
) -> Result<(), CompileError> {
    // A member without links cannot be expressed as a chain; related
    // subsets never contain one, but stay safe and defer to the LP.
    if subset.iter().any(|&m| assignment.links(m).is_empty()) {
        return solve_fallback(
            assignment,
            bounds,
            activity,
            subset,
            capacity_scale,
            intervals,
            p,
            stats,
            lp_stats,
        );
    }

    let actives: Vec<Vec<usize>> = subset
        .iter()
        .map(|&m| activity.active_intervals(m))
        .collect();
    let durations: Vec<f64> = subset
        .iter()
        .map(|&m| bounds.window(m).duration())
        .collect();
    let total: f64 = durations.iter().sum();

    // Nodes: source, sink, one per member, then (link, interval) capacity
    // pairs created in ascending (link, interval) order.
    let mut net = FlowNet::new(2 + subset.len());
    let (source, sink) = (0usize, 1usize);
    let member_node = |mi: usize| 2 + mi;

    let mut on_link: std::collections::BTreeMap<LinkId, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (mi, &m) in subset.iter().enumerate() {
        for &l in assignment.links(m) {
            on_link.entry(l).or_default().push(mi);
        }
    }
    // cap_arc[(link, k)] -> (in node, capacity arc index); the out node is
    // the arc's head.
    let mut cap_arc: std::collections::HashMap<(LinkId, usize), (usize, usize)> =
        std::collections::HashMap::new();
    let mut link_ks: Vec<usize> = Vec::new();
    for (&link, members) in &on_link {
        link_ks.clear();
        for &mi in members {
            link_ks.extend_from_slice(&actives[mi]);
        }
        link_ks.sort_unstable();
        link_ks.dedup();
        for &k in &link_ks {
            let input = net.add_node();
            let output = net.add_node();
            let ai = net.add_arc(input, output, capacity_scale * intervals.length(k), 0.0);
            cap_arc.insert((link, k), (input, ai));
        }
    }

    // Source and chain arcs, member-major then interval-major. Transfer
    // and exit arcs are deduplicated — messages sharing consecutive links
    // share them.
    let mut entry_arcs: Vec<Vec<usize>> = vec![Vec::new(); subset.len()];
    let mut seen_transfer: std::collections::HashSet<(usize, usize)> =
        std::collections::HashSet::new();
    for (mi, &m) in subset.iter().enumerate() {
        net.add_arc(source, member_node(mi), durations[mi], 0.0);
        let links = assignment.links(m);
        for &k in &actives[mi] {
            let first_in = cap_arc[&(links[0], k)].0;
            entry_arcs[mi].push(net.add_arc(member_node(mi), first_in, durations[mi], k as f64));
            for w in links.windows(2) {
                let from_out = net.arcs[cap_arc[&(w[0], k)].1].to;
                let to_in = cap_arc[&(w[1], k)].0;
                if seen_transfer.insert((from_out, to_in)) {
                    net.add_arc(from_out, to_in, total, 0.0);
                }
            }
            let last_out = net.arcs[cap_arc[&(links[links.len() - 1], k)].1].to;
            if seen_transfer.insert((last_out, sink)) {
                net.add_arc(last_out, sink, total, 0.0);
            }
        }
    }

    stats.solves += 1;
    stats.nodes += net.adj.len() as u64;
    stats.arcs += (net.arcs.len() / 2) as u64;
    let value = net.max_flow_min_cost(source, sink, stats);
    if value < total - EPS {
        // Exact verdict: an LP-feasible split always induces a full flow.
        return Err(CompileError::AllocationInfeasible {
            subset: subset.to_vec(),
        });
    }

    // Extract the split from the entry arcs; conservation at the member
    // node makes each row sum to its duration (up to augmentation
    // rounding, absorbed into the largest entry).
    let mut x: Vec<Vec<f64>> = Vec::with_capacity(subset.len());
    for (mi, ks) in actives.iter().enumerate() {
        let mut row: Vec<f64> = ks
            .iter()
            .zip(&entry_arcs[mi])
            .map(|(_, &ai)| net.flow(ai))
            .collect();
        let shortfall = durations[mi] - row.iter().sum::<f64>();
        if shortfall.abs() > FLOW_EPS {
            if let Some(big) = (0..row.len()).max_by(|&a, &b| row[a].total_cmp(&row[b])) {
                row[big] += shortfall;
            }
        }
        x.push(row);
    }

    // Exact constraint-(4) re-check: chain jumping can undercharge a link.
    let exact = on_link.values().all(|members| {
        link_ks.clear();
        for &mi in members {
            link_ks.extend_from_slice(&actives[mi]);
        }
        link_ks.sort_unstable();
        link_ks.dedup();
        link_ks.iter().all(|&k| {
            let used: f64 = members
                .iter()
                .filter_map(|&mi| {
                    actives[mi]
                        .iter()
                        .position(|&ak| ak == k)
                        .map(|pos| x[mi][pos])
                })
                .sum();
            used <= capacity_scale * intervals.length(k) + EPS
        })
    });
    if !exact {
        return solve_fallback(
            assignment,
            bounds,
            activity,
            subset,
            capacity_scale,
            intervals,
            p,
            stats,
            lp_stats,
        );
    }

    for (mi, &m) in subset.iter().enumerate() {
        for (pos, &k) in actives[mi].iter().enumerate() {
            if x[mi][pos] > EPS {
                p[m.index()][k] = x[mi][pos];
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn solve_fallback(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    subset: &[MessageId],
    capacity_scale: f64,
    intervals: &Intervals,
    p: &mut [Vec<f64>],
    stats: &mut FlowAllocStats,
    lp_stats: &mut AllocationStats,
) -> Result<(), CompileError> {
    stats.fallbacks += 1;
    solve_subset_capacities(
        assignment,
        bounds,
        activity,
        subset,
        |_, k| capacity_scale * intervals.length(k),
        p,
        None,
        lp_stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{allocate_intervals, related_subsets};
    use sr_mapping::Allocation;
    use sr_tfg::{assign_time_bounds, TfgBuilder, Timing, WindowPolicy};
    use sr_topology::{GeneralizedHypercube, NodeId};

    struct Fixture {
        assignment: PathAssignment,
        bounds: TimeBounds,
        activity: ActivityMatrix,
        intervals: Intervals,
        subsets: Vec<Vec<MessageId>>,
    }

    fn shared_link(period: f64, bytes: u64) -> Fixture {
        let topo = GeneralizedHypercube::binary(1).unwrap();
        let mut b = TfgBuilder::new();
        let t0 = b.task("t0", 500);
        let t1 = b.task("t1", 500);
        let t2 = b.task("t2", 500);
        b.message("m0", t0, t1, bytes).unwrap();
        b.message("m1", t1, t2, bytes).unwrap();
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1), NodeId(0)], &tfg, &topo).unwrap();
        let bounds = assign_time_bounds(&tfg, &timing, period, WindowPolicy::LongestTask).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let assignment = PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
        let subsets = related_subsets(&assignment, &activity);
        Fixture {
            assignment,
            bounds,
            activity,
            intervals,
            subsets,
        }
    }

    fn flow_alloc(f: &Fixture, scale: f64) -> Result<IntervalAllocation, CompileError> {
        allocate_intervals_flow(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            scale,
            &mut FlowAllocStats::default(),
            &mut AllocationStats::default(),
        )
    }

    fn check_constraints(f: &Fixture, alloc: &IntervalAllocation, scale: f64) {
        for m in 0..f.assignment.len() {
            let m = MessageId(m);
            if f.assignment.links(m).is_empty() {
                continue;
            }
            assert!(
                (alloc.total(m) - f.bounds.window(m).duration()).abs() < 1e-6,
                "(3) violated for {m}"
            );
            for k in 0..f.intervals.len() {
                if alloc.allocated(m, k) > EPS {
                    assert!(f.activity.is_active(m, k), "inactive allocation {m}@{k}");
                }
            }
        }
        for k in 0..f.intervals.len() {
            let sum: f64 = (0..f.assignment.len())
                .filter(|&i| !f.assignment.links(MessageId(i)).is_empty())
                .map(|i| alloc.allocated(MessageId(i), k))
                .sum();
            assert!(
                sum <= scale * f.intervals.length(k) + 1e-6,
                "(4) violated in interval {k}: {sum}"
            );
        }
    }

    #[test]
    fn flow_matches_simplex_verdict_feasible() {
        let f = shared_link(50.0, 640);
        let flow = flow_alloc(&f, 1.0).unwrap();
        check_constraints(&f, &flow, 1.0);
        // Simplex agrees on feasibility.
        assert!(allocate_intervals(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            1.0
        )
        .is_ok());
    }

    #[test]
    fn flow_matches_simplex_verdict_infeasible() {
        let f = shared_link(50.0, 1920); // 30+30 µs over a 50 µs frame
        let err = flow_alloc(&f, 1.0).unwrap_err();
        assert!(matches!(err, CompileError::AllocationInfeasible { .. }));
        assert!(allocate_intervals(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            1.0
        )
        .is_err());
    }

    #[test]
    fn flow_respects_capacity_scale() {
        let f = shared_link(50.0, 1280); // 20+20 µs: fits at 1.0, not at 0.5
        assert!(flow_alloc(&f, 1.0).is_ok());
        let err = flow_alloc(&f, 0.5).unwrap_err();
        assert!(matches!(err, CompileError::AllocationInfeasible { .. }));
    }

    #[test]
    fn multi_interval_split_is_valid() {
        let f = shared_link(120.0, 640);
        let alloc = flow_alloc(&f, 1.0).unwrap();
        check_constraints(&f, &alloc, 1.0);
    }

    #[test]
    fn stats_count_network_work() {
        let f = shared_link(50.0, 640);
        let mut stats = FlowAllocStats::default();
        allocate_intervals_flow(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            1.0,
            &mut stats,
            &mut AllocationStats::default(),
        )
        .unwrap();
        assert!(stats.solves >= 1);
        assert!(stats.arcs > 0);
        assert!(stats.augmentations > 0);
        assert_eq!(stats.fallbacks, 0);
    }
}
