//! Human-readable renderings of a compiled schedule.
//!
//! Scheduled routing is fully static, so one period frame tells the whole
//! story; these helpers draw it as ASCII Gantt charts for inspection,
//! debugging, and documentation.

use std::fmt::Write;

use sr_topology::{LinkId, Topology};

use crate::Schedule;

impl Schedule {
    /// Renders one link's frame as an ASCII timeline of `width` cells:
    /// `.` idle, the carried message's id (mod 10) while busy, and `*`
    /// where `width` is too coarse to separate distinct messages (two or
    /// more different messages land on one cell) — previously the last
    /// writer silently won, hiding the collapse.
    ///
    /// Every segment paints at least one cell, so sub-cell segments stay
    /// visible at any width.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn render_link_timeline(&self, link: LinkId, width: usize) -> String {
        assert!(width > 0, "timeline needs at least one cell");
        let mut cells: Vec<Option<usize>> = vec![None; width];
        let mut shared = vec![false; width];
        let scale = self.period / width as f64;
        for seg in &self.segments {
            if !self.assignment.links(seg.message).contains(&link) {
                continue;
            }
            let a = ((seg.start / scale).floor().max(0.0) as usize).min(width - 1);
            let b = ((seg.end / scale).ceil() as usize).clamp(a + 1, width.max(a + 1));
            let m = seg.message.index();
            for i in a..b.min(width) {
                match cells[i] {
                    Some(prev) if prev != m => shared[i] = true,
                    _ => cells[i] = Some(m),
                }
            }
        }
        cells
            .iter()
            .zip(&shared)
            .map(|(c, &s)| match (c, s) {
                (_, true) => '*',
                (Some(m), false) => char::from_digit((m % 10) as u32, 10).expect("digit in range"),
                (None, false) => '.',
            })
            .collect()
    }

    /// Renders every traffic-carrying link of `topo` as a timeline block,
    /// one row per link:
    ///
    /// ```text
    /// L3  (N0-N1)  000000....2222......
    /// L17 (N1-N3)  ......111111........
    /// ```
    ///
    /// Idle links are omitted; the header row labels the `[0, τ_in)` frame
    /// the timelines span.
    pub fn render_timelines(&self, topo: &dyn Topology, width: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} 0 µs{:>w$} = τ_in",
            "link",
            format!("{:.1} µs", self.period),
            w = width.saturating_sub(4)
        );
        for l in 0..topo.num_links() {
            let link = LinkId(l);
            let row = self.render_link_timeline(link, width);
            if row.chars().all(|c| c == '.') {
                continue;
            }
            let (a, b) = topo.link_endpoints(link);
            let _ = writeln!(out, "{:<16} {row}", format!("{link} ({a}-{b})"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileConfig};
    use sr_tfg::{generators, Timing};
    use sr_topology::GeneralizedHypercube;

    fn compiled() -> (GeneralizedHypercube, Schedule) {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::chain(3, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let s = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            100.0,
            &CompileConfig::default(),
        )
        .expect("compiles");
        (topo, s)
    }

    #[test]
    fn busy_cells_match_busy_time() {
        let (topo, s) = compiled();
        for l in 0..sr_topology::Topology::num_links(&topo) {
            let link = LinkId(l);
            let row = s.render_link_timeline(link, 100);
            let busy_cells = row.chars().filter(|&c| c != '.').count();
            let busy_time: f64 = s.link_busy_spans(link).iter().map(|(a, b)| b - a).sum();
            // 100 cells over a 100 µs frame: 1 cell ≈ 1 µs, ±2 for rounding.
            assert!(
                (busy_cells as f64 - busy_time).abs() <= 2.0,
                "{link}: {busy_cells} cells vs {busy_time} µs\n{row}"
            );
        }
    }

    #[test]
    fn timelines_skip_idle_links() {
        let (topo, s) = compiled();
        let text = s.render_timelines(&topo, 50);
        // Two network messages -> at most a handful of rows + header.
        let rows = text.lines().count();
        assert!((2..=6).contains(&rows), "{text}");
        assert!(text.contains("µs"));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_width_panics() {
        let (_, s) = compiled();
        let _ = s.render_link_timeline(LinkId(0), 0);
    }

    #[test]
    fn header_labels_the_tau_in_frame() {
        let (topo, s) = compiled();
        let text = s.render_timelines(&topo, 50);
        let header = text.lines().next().unwrap();
        assert!(header.contains("τ_in"), "{header}");
        assert!(header.contains("µs"), "{header}");
    }

    /// Two messages forced over the single link of a 2-node machine: at
    /// widths too coarse to separate them the shared cell renders `*`
    /// instead of silently showing only the last-painted message, and every
    /// segment stays visible (≥ 1 cell) at any width.
    #[test]
    fn narrow_width_marks_collapsed_cells() {
        use sr_mapping::Allocation;
        use sr_topology::NodeId;
        let topo = GeneralizedHypercube::binary(1).unwrap();
        let mut b = sr_tfg::TfgBuilder::new();
        let t0 = b.task("t0", 500);
        let t1 = b.task("t1", 500);
        let t2 = b.task("t2", 500);
        b.message("a", t0, t1, 640).unwrap();
        b.message("b", t0, t2, 640).unwrap();
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1), NodeId(1)], &tfg, &topo).unwrap();
        let s = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            100.0,
            &CompileConfig::default(),
        )
        .expect("compiles");
        // Both messages traverse LinkId(0); one cell cannot separate them.
        let collapsed = s.render_link_timeline(LinkId(0), 1);
        assert_eq!(collapsed, "*");
        // At generous width both ids are visible and nothing is starred.
        let wide = s.render_link_timeline(LinkId(0), 100);
        assert!(wide.contains('0') && wide.contains('1'), "{wide}");
        // Output length always matches the requested width.
        for width in 1..8 {
            assert_eq!(
                s.render_link_timeline(LinkId(0), width).chars().count(),
                width
            );
        }
    }
}
