//! Throughput optimization and allocation co-design on top of [`compile`].
//!
//! Two questions the paper raises but leaves open:
//!
//! * §6 operates the machine "at the maximum possible throughput" — what
//!   *is* the smallest sustainable period? [`find_min_period`] answers by
//!   bisection over the compile-time admission test.
//! * §7: "since allocation determines the set of alternative paths for each
//!   message, coupling it with path assignment … should be explored" —
//!   [`co_design`] couples them: hill-climbing over task placements scored
//!   by the path-assignment utilization they admit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sr_mapping::Allocation;
use sr_tfg::{TaskFlowGraph, Timing};
use sr_topology::{NodeId, Topology};

use crate::{
    assign_paths, compile, ActivityMatrix, CompileConfig, CompileError, Intervals, Schedule, EPS,
};

/// The outcome of a minimum-period search.
#[derive(Debug, Clone)]
pub struct MinPeriodResult {
    /// The smallest period found to compile, µs.
    pub period: f64,
    /// The schedule compiled at that period.
    pub schedule: Schedule,
    /// The largest period probed that failed (the search's lower bracket),
    /// µs. `None` when even the theoretical minimum `τ_c` compiled.
    pub infeasible_below: Option<f64>,
}

/// Finds (by bisection) the smallest input period at which `compile`
/// succeeds, within `tolerance` µs.
///
/// The search brackets between `τ_c` (below which pipelining is impossible
/// regardless of routing) and `max_period`. Compile-time feasibility is not
/// perfectly monotone in the period (interval structures change shape — the
/// paper's own Figs. 7–8 show isolated infeasible points), so the result is
/// the smallest *found* feasible period: an upper bound on the true optimum,
/// reached by bisection plus a final downward sweep.
///
/// # Errors
///
/// Returns the `max_period` compile error when even the largest period
/// fails.
pub fn find_min_period(
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    alloc: &Allocation,
    timing: &Timing,
    max_period: f64,
    tolerance: f64,
    config: &CompileConfig,
) -> Result<MinPeriodResult, CompileError> {
    let tau_c = timing.longest_task(tfg);
    // Fast path: the theoretical minimum itself.
    if let Ok(s) = compile(topo, tfg, alloc, timing, tau_c, config) {
        return Ok(MinPeriodResult {
            period: tau_c,
            schedule: s,
            infeasible_below: None,
        });
    }
    let mut hi = max_period.max(tau_c);
    let mut best = compile(topo, tfg, alloc, timing, hi, config)?;
    let mut lo = tau_c;
    while hi - lo > tolerance.max(EPS) {
        let mid = 0.5 * (lo + hi);
        match compile(topo, tfg, alloc, timing, mid, config) {
            Ok(s) => {
                best = s;
                hi = mid;
            }
            Err(_) => lo = mid,
        }
    }
    Ok(MinPeriodResult {
        period: hi,
        schedule: best,
        infeasible_below: Some(lo),
    })
}

/// The outcome of allocation/path-assignment co-design.
#[derive(Debug, Clone)]
pub struct CoDesignResult {
    /// The placement found.
    pub allocation: Allocation,
    /// Its effective peak utilization under `assign_paths`.
    pub utilization: f64,
    /// Accepted improvement moves.
    pub moves_accepted: usize,
}

/// Couples task allocation with path assignment (paper §7): hill-climbs
/// over single-task relocations and pairwise swaps, scoring each candidate
/// placement by the **effective peak utilization** its best path assignment
/// achieves — so placements are chosen for *schedulability*, not raw
/// byte-hops.
///
/// Starting from `initial` (e.g. a scatter placement), performs
/// `iterations` random proposals, keeping strict improvements.
/// Deterministic per `seed`. The scoring runs a reduced `assign_paths`
/// (few restarts), so this is the expensive-but-effective end of the
/// mapping spectrum.
#[allow(clippy::too_many_arguments)] // mirrors the compile() surface plus search knobs
pub fn co_design(
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    timing: &Timing,
    period: f64,
    initial: Allocation,
    iterations: usize,
    seed: u64,
    config: &CompileConfig,
) -> CoDesignResult {
    let score = |alloc: &Allocation| -> f64 {
        let Ok(bounds) = sr_tfg::assign_time_bounds(tfg, timing, period, config.window_policy)
        else {
            return f64::INFINITY;
        };
        // AP overload disqualifies a placement outright.
        let mut demand = vec![0.0f64; topo.num_nodes()];
        for (id, task) in tfg.iter_tasks() {
            demand[alloc.node_of(id).index()] += timing.exec_time(task);
        }
        if demand.iter().any(|&d| d > period + 1e-9) {
            return f64::INFINITY;
        }
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let out = assign_paths(
            tfg,
            topo,
            alloc,
            &bounds,
            &intervals,
            &activity,
            &crate::AssignPathsConfig {
                max_restarts: 2,
                seed,
                ..config.assign_paths
            },
        );
        out.utilization.effective_peak()
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = initial;
    let mut current_score = score(&current);
    let mut moves_accepted = 0;

    for _ in 0..iterations {
        let mut placement = current.placement().to_vec();
        if rng.gen_bool(0.5) && tfg.num_tasks() >= 2 {
            let a = rng.gen_range(0..tfg.num_tasks());
            let b = rng.gen_range(0..tfg.num_tasks());
            placement.swap(a, b);
        } else {
            let t = rng.gen_range(0..tfg.num_tasks());
            placement[t] = NodeId(rng.gen_range(0..topo.num_nodes()));
        }
        let Ok(candidate) = Allocation::new(placement, tfg, topo) else {
            continue;
        };
        let s = score(&candidate);
        if s < current_score - EPS {
            current = candidate;
            current_score = s;
            moves_accepted += 1;
        }
    }

    CoDesignResult {
        allocation: current,
        utilization: current_score,
        moves_accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_tfg::generators;
    use sr_topology::GeneralizedHypercube;

    #[test]
    fn min_period_brackets_correctly() {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::chain(3, 500, 1280); // τ_c = 50, tx 20 each
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let r = find_min_period(
            &topo,
            &tfg,
            &alloc,
            &timing,
            400.0,
            0.5,
            &CompileConfig::default(),
        )
        .expect("some period compiles");
        // An uncontended chain compiles at τ_c itself.
        assert!(r.period <= 50.0 + 0.5, "found {}", r.period);
        assert_eq!(r.schedule.period(), r.period);
    }

    #[test]
    fn min_period_detects_communication_bound() {
        // Two fat messages forced over one link: per period the link needs
        // 2 × 30 µs although τ_c = 20 — the true floor is 60 µs, above τ_c.
        let topo = GeneralizedHypercube::binary(1).unwrap();
        let mut b = sr_tfg::TfgBuilder::new();
        let t0 = b.task("t0", 200);
        let t1 = b.task("t1", 200);
        let t2 = b.task("t2", 200);
        b.message("m0", t0, t1, 1920).unwrap();
        b.message("m1", t1, t2, 1920).unwrap();
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1), NodeId(0)], &tfg, &topo).unwrap();
        let r = find_min_period(
            &topo,
            &tfg,
            &alloc,
            &timing,
            400.0,
            0.5,
            &CompileConfig::default(),
        )
        .expect("feasible at large periods");
        assert!(r.period >= 60.0 - 0.5, "found {}", r.period);
        assert!(r.infeasible_below.is_some());
        assert!(r.infeasible_below.unwrap() < r.period);
    }

    #[test]
    fn min_period_propagates_hopeless_failure() {
        // More traffic than the network can carry at ANY period ≤ max: one
        // link, message longer than max_period.
        let topo = GeneralizedHypercube::binary(1).unwrap();
        let mut b = sr_tfg::TfgBuilder::new();
        let t0 = b.task("t0", 10);
        let t1 = b.task("t1", 10);
        b.message("m", t0, t1, 64_000).unwrap(); // 1000 µs at B=64
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1)], &tfg, &topo).unwrap();
        let err = find_min_period(
            &topo,
            &tfg,
            &alloc,
            &timing,
            500.0,
            1.0,
            &CompileConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::TimeBounds(_)));
    }

    #[test]
    fn co_design_improves_a_bad_start() {
        let topo = GeneralizedHypercube::binary(4).unwrap();
        let tfg = generators::diamond(5, 500, 1920); // 7 tasks, fat messages
        let timing = Timing::new(64.0, 10.0);
        let period = 75.0;
        // Round-robin start: all fan-out crosses the same low links.
        let start = sr_mapping::round_robin(&tfg, &topo);
        let start_score = {
            let r = co_design(
                &topo,
                &tfg,
                &timing,
                period,
                start.clone(),
                0,
                11,
                &CompileConfig::default(),
            );
            r.utilization
        };
        let tuned = co_design(
            &topo,
            &tfg,
            &timing,
            period,
            start,
            60,
            11,
            &CompileConfig::default(),
        );
        assert!(tuned.utilization <= start_score + 1e-9);
        // The returned placement actually admits that utilization: compile
        // agrees when it is ≤ 1.
        if tuned.utilization <= 1.0 {
            assert!(compile(
                &topo,
                &tfg,
                &tuned.allocation,
                &timing,
                period,
                &CompileConfig::default()
            )
            .is_ok());
        }
    }

    #[test]
    fn co_design_is_deterministic() {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::diamond(3, 500, 640);
        let timing = Timing::new(64.0, 10.0);
        let start = sr_mapping::round_robin(&tfg, &topo);
        let run = || {
            co_design(
                &topo,
                &tfg,
                &timing,
                80.0,
                start.clone(),
                25,
                5,
                &CompileConfig::default(),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.allocation, b.allocation);
        assert_eq!(a.moves_accepted, b.moves_accepted);
    }
}
