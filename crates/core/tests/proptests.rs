//! Property-based tests of the scheduled-routing compiler's internal
//! invariants, stage by stage.

use proptest::prelude::*;
use sr_core::{
    allocate_intervals, allocate_intervals_flow_with_kernel, assign_paths, compile,
    related_subsets, schedule_intervals, ActivityMatrix, AllocEngine, AllocationStats,
    AssignPathsConfig, CompileConfig, FlowAllocStats, FlowKernel, FlowWorkspace, Intervals,
    PathAssignment, UtilizationMap, EPS,
};
use sr_mapping::Allocation;
use sr_tfg::generators::{layered_random, LayeredParams};
use sr_tfg::{assign_time_bounds, MessageId, TaskFlowGraph, TimeBounds, Timing, WindowPolicy};
use sr_topology::{GeneralizedHypercube, Topology};

#[derive(Debug, Clone)]
struct Stage {
    tfg: TaskFlowGraph,
    alloc: Allocation,
    bounds: TimeBounds,
}

fn stage() -> impl Strategy<Value = (Stage, u64)> {
    (
        any::<u64>(),
        any::<u64>(),
        1.2f64..4.0,
        2usize..4,
        1usize..4,
    )
        .prop_filter_map(
            "period accommodates all messages",
            |(seed, alloc_seed, period_factor, layers, width)| {
                let topo = GeneralizedHypercube::binary(4).unwrap();
                let params = LayeredParams {
                    layers,
                    width,
                    edge_probability: 0.5,
                    ops: (500, 2000),
                    bytes: (64, 2048),
                };
                let tfg = layered_random(seed, &params);
                let timing = Timing::new(64.0, 20.0);
                let alloc = sr_mapping::random(&tfg, &topo, alloc_seed);
                let period = timing.longest_task(&tfg) * period_factor;
                let bounds =
                    assign_time_bounds(&tfg, &timing, period, WindowPolicy::LongestTask).ok()?;
                Some((Stage { tfg, alloc, bounds }, seed))
            },
        )
}

fn cube() -> GeneralizedHypercube {
    GeneralizedHypercube::binary(4).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interval partitions tile the frame exactly and the activity matrix
    /// is consistent with the windows.
    #[test]
    fn intervals_tile_frame((s, _) in stage()) {
        let intervals = Intervals::from_bounds(&s.bounds);
        let total: f64 = (0..intervals.len()).map(|k| intervals.length(k)).sum();
        prop_assert!((total - s.bounds.period()).abs() < 1e-6);
        let activity = ActivityMatrix::new(&s.bounds, &intervals);
        for (i, w) in s.bounds.windows().iter().enumerate() {
            // Constraint (2): active time covers the duration.
            let at = activity.active_time(MessageId(i), &intervals);
            prop_assert!(at >= w.duration() - 1e-6,
                "message {i}: active {at} < duration {}", w.duration());
        }
    }

    /// AssignPaths returns valid shortest paths and never exceeds the
    /// baseline's effective peak.
    #[test]
    fn assign_paths_valid_and_no_worse((s, seed) in stage()) {
        let topo = cube();
        let intervals = Intervals::from_bounds(&s.bounds);
        let activity = ActivityMatrix::new(&s.bounds, &intervals);
        let out = assign_paths(
            &s.tfg, &topo, &s.alloc, &s.bounds, &intervals, &activity,
            &AssignPathsConfig { seed, max_restarts: 3, ..AssignPathsConfig::default() },
        );
        prop_assert!(out.utilization.effective_peak() <= out.baseline_peak + 1e-9);
        for (i, m) in s.tfg.messages().iter().enumerate() {
            let p = out.assignment.path(MessageId(i));
            prop_assert_eq!(p.source(), s.alloc.node_of(m.src()));
            prop_assert_eq!(p.destination(), s.alloc.node_of(m.dst()));
            prop_assert_eq!(
                p.hops(),
                topo.distance(p.source(), p.destination())
            );
            prop_assert!(p.validate(&topo));
        }
    }

    /// Related subsets partition the network-borne messages; messages in
    /// different subsets never share a link while co-active.
    #[test]
    fn subsets_partition_and_separate((s, _) in stage()) {
        let topo = cube();
        let intervals = Intervals::from_bounds(&s.bounds);
        let activity = ActivityMatrix::new(&s.bounds, &intervals);
        let pa = PathAssignment::lsd_to_msd(&s.tfg, &topo, &s.alloc);
        let subsets = related_subsets(&pa, &activity);

        // Partition: each network message appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for sub in &subsets {
            for &m in sub {
                prop_assert!(seen.insert(m), "duplicate {m}");
                prop_assert!(!pa.links(m).is_empty(), "local message in subset");
            }
        }
        let network_count = (0..s.tfg.num_messages())
            .filter(|&i| !pa.links(MessageId(i)).is_empty())
            .count();
        prop_assert_eq!(seen.len(), network_count);

        // Separation across subsets.
        for (a, sub_a) in subsets.iter().enumerate() {
            for sub_b in subsets.iter().skip(a + 1) {
                for &ma in sub_a {
                    for &mb in sub_b {
                        let share_link = pa.links(ma).iter().any(|l| pa.links(mb).contains(l));
                        let share_interval = activity
                            .active_intervals(ma)
                            .iter()
                            .any(|&k| activity.is_active(mb, k));
                        prop_assert!(!(share_link && share_interval),
                            "{ma} and {mb} related across subsets");
                    }
                }
            }
        }
    }

    /// Whenever message–interval allocation succeeds, constraints (3) and
    /// (4) hold; whenever interval scheduling then succeeds, the slices
    /// exactly realize the allocation without link conflicts.
    #[test]
    fn allocation_and_scheduling_consistent((s, seed) in stage()) {
        let topo = cube();
        let intervals = Intervals::from_bounds(&s.bounds);
        let activity = ActivityMatrix::new(&s.bounds, &intervals);
        let out = assign_paths(
            &s.tfg, &topo, &s.alloc, &s.bounds, &intervals, &activity,
            &AssignPathsConfig { seed, max_restarts: 2, ..AssignPathsConfig::default() },
        );
        let pa = out.assignment;
        let subsets = related_subsets(&pa, &activity);
        let Ok(allocation) =
            allocate_intervals(&pa, &s.bounds, &activity, &intervals, &subsets, 1.0)
        else { return Ok(()); };

        // (3): totals match durations; allocation only in active intervals.
        for sub in &subsets {
            for &m in sub {
                prop_assert!(
                    (allocation.total(m) - s.bounds.window(m).duration()).abs() < 1e-5
                );
                for k in 0..intervals.len() {
                    if allocation.allocated(m, k) > EPS {
                        prop_assert!(activity.is_active(m, k));
                    }
                }
            }
        }
        // (4): per-link per-interval demand within capacity.
        for l in 0..topo.num_links() {
            for k in 0..intervals.len() {
                let demand: f64 = (0..s.tfg.num_messages())
                    .filter(|&i| pa.uses(MessageId(i), sr_topology::LinkId(l)))
                    .map(|i| allocation.allocated(MessageId(i), k))
                    .sum();
                prop_assert!(demand <= intervals.length(k) + 1e-5);
            }
        }

        let Ok(scheds) = schedule_intervals(&pa, &allocation, &intervals, &subsets, 50_000)
        else { return Ok(()); };
        // Slices realize the allocation exactly.
        let mut realized = vec![vec![0.0; intervals.len()]; s.tfg.num_messages()];
        for is in &scheds {
            for slice in &is.slices {
                let (ks, ke) = intervals.bounds(is.interval);
                prop_assert!(slice.start >= ks - 1e-6 && slice.end() <= ke + 1e-5,
                    "slice leaves interval {}: [{}, {}] vs [{ks}, {ke}]",
                    is.interval, slice.start, slice.end());
                for &m in &slice.messages {
                    realized[m.index()][is.interval] += slice.duration;
                }
            }
        }
        #[allow(clippy::needless_range_loop)] // `i`/`k` are also the id values
        for i in 0..s.tfg.num_messages() {
            for k in 0..intervals.len() {
                prop_assert!(
                    (realized[i][k] - allocation.allocated(MessageId(i), k)).abs() < 1e-5,
                    "message {i} interval {k}: {} vs {}",
                    realized[i][k], allocation.allocated(MessageId(i), k)
                );
            }
        }
        // No two time-overlapping slices share a link.
        for is in &scheds {
            for (a, sa) in is.slices.iter().enumerate() {
                for sb in is.slices.iter().skip(a + 1) {
                    let overlap = sa.start.max(sb.start) < sa.end().min(sb.end()) - 1e-9;
                    if !overlap { continue; }
                    for &ma in &sa.messages {
                        for &mb in &sb.messages {
                            if ma == mb { continue; }
                            prop_assert!(
                                pa.links(ma).iter().all(|l| !pa.links(mb).contains(l)),
                                "overlapping slices share a link: {ma} vs {mb}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// The parallel feedback search is bit-identical to the serial walk:
    /// the same (seed, capacity-scale) candidate wins, so success yields
    /// the same segments and utilization, and failure yields the same
    /// error, regardless of worker count.
    #[test]
    fn parallel_compile_matches_serial((s, _) in stage()) {
        let topo = cube();
        let timing = Timing::new(64.0, 20.0);
        let period = s.bounds.period();
        let serial = CompileConfig { parallelism: 1, ..CompileConfig::default() };
        let parallel = CompileConfig { parallelism: 4, ..serial.clone() };
        let a = compile(&topo, &s.tfg, &s.alloc, &timing, period, &serial);
        let b = compile(&topo, &s.tfg, &s.alloc, &timing, period, &parallel);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.capacity_scale().to_bits(), y.capacity_scale().to_bits());
                prop_assert_eq!(
                    x.peak_utilization().to_bits(),
                    y.peak_utilization().to_bits()
                );
                for i in 0..s.tfg.num_messages() {
                    let (pa, pb) = (x.assignment().path(MessageId(i)), y.assignment().path(MessageId(i)));
                    prop_assert_eq!(pa.nodes(), pb.nodes(), "message {} routed differently", i);
                }
                prop_assert_eq!(x.segments().len(), y.segments().len());
                for (sa, sb) in x.segments().iter().zip(y.segments()) {
                    prop_assert_eq!(sa.message, sb.message);
                    prop_assert_eq!(sa.start.to_bits(), sb.start.to_bits());
                    prop_assert_eq!(sa.end.to_bits(), sb.end.to_bits());
                }
            }
            (Err(ea), Err(eb)) => {
                prop_assert_eq!(format!("{ea}"), format!("{eb}"));
            }
            (Ok(_), Err(e)) => prop_assert!(false, "serial succeeded, parallel failed: {e}"),
            (Err(e), Ok(_)) => prop_assert!(false, "serial failed ({e}), parallel succeeded"),
        }
    }

    /// The min-cost-flow allocation engine is a drop-in replacement for the
    /// revised simplex: on random small instances both engines reach the
    /// same feasibility verdict, and when both compile, the flow schedule
    /// verifies and lands on the same capacity-ladder rung, path assignment,
    /// and peak utilization. (Interval splits — and hence Ω segments — may
    /// differ: the LP has many optimal vertices and each engine picks one.)
    #[test]
    fn flow_engine_matches_simplex_oracle((s, _) in stage()) {
        let topo = cube();
        let timing = Timing::new(64.0, 20.0);
        let period = s.bounds.period();
        let simplex_cfg = CompileConfig { parallelism: 1, ..CompileConfig::default() };
        let flow_cfg = CompileConfig { alloc_engine: AllocEngine::Flow, ..simplex_cfg.clone() };
        let a = compile(&topo, &s.tfg, &s.alloc, &timing, period, &simplex_cfg);
        let b = compile(&topo, &s.tfg, &s.alloc, &timing, period, &flow_cfg);
        match (a, b) {
            (Ok(simplex), Ok(flow)) => {
                prop_assert!(sr_core::verify(&simplex, &topo, &s.tfg).is_ok());
                prop_assert!(sr_core::verify(&flow, &topo, &s.tfg).is_ok());
                prop_assert_eq!(
                    simplex.capacity_scale().to_bits(),
                    flow.capacity_scale().to_bits()
                );
                prop_assert_eq!(simplex.assignment(), flow.assignment());
                prop_assert_eq!(
                    simplex.peak_utilization().to_bits(),
                    flow.peak_utilization().to_bits()
                );
            }
            (Err(_), Err(_)) => {}
            (Ok(_), Err(e)) => prop_assert!(false, "simplex compiled, flow failed: {e}"),
            (Err(e), Ok(_)) => prop_assert!(false, "simplex failed ({e}), flow compiled"),
        }
    }

    /// The potential-reusing Dijkstra kernel is bit-identical to the
    /// Bellman–Ford oracle on random subset networks: not just the same
    /// objective, the same *allocation matrix* cell for cell. Both kernels
    /// compute exact shortest distances and share one canonical
    /// tight-arc predecessor extraction, so the augmenting paths — and
    /// therefore every residual state — coincide exactly.
    #[test]
    fn dijkstra_kernel_matches_bellman_ford_allocations((s, _) in stage()) {
        let topo = cube();
        let intervals = Intervals::from_bounds(&s.bounds);
        let activity = ActivityMatrix::new(&s.bounds, &intervals);
        let pa = PathAssignment::lsd_to_msd(&s.tfg, &topo, &s.alloc);
        let subsets = related_subsets(&pa, &activity);

        let run = |kernel: FlowKernel| {
            let mut ws = FlowWorkspace::new();
            let mut stats = FlowAllocStats::default();
            let mut lp = AllocationStats::default();
            let r = allocate_intervals_flow_with_kernel(
                &pa, &s.bounds, &activity, &intervals, &subsets, 1.0,
                kernel, &mut ws, &mut stats, &mut lp,
            );
            (r, stats)
        };
        let (dk, dk_stats) = run(FlowKernel::SspDijkstra);
        let (bf, bf_stats) = run(FlowKernel::BellmanFordOracle);

        match (dk, bf) {
            (Ok(dk), Ok(bf)) => {
                for i in 0..s.tfg.num_messages() {
                    for k in 0..intervals.len() {
                        let (a, b) = (
                            dk.allocated(MessageId(i), k),
                            bf.allocated(MessageId(i), k),
                        );
                        prop_assert_eq!(
                            a.to_bits(), b.to_bits(),
                            "message {} interval {}: dijkstra {} vs bellman-ford {}",
                            i, k, a, b
                        );
                    }
                }
                prop_assert_eq!(dk_stats.augmentations, bf_stats.augmentations);
                prop_assert_eq!(bf_stats.dijkstra_pops, 0);
                prop_assert_eq!(bf_stats.potential_reuse_hits, 0);
            }
            (Err(_), Err(_)) => {} // same verdict is all we require
            (Ok(_), Err(e)) => prop_assert!(false, "dijkstra fine, oracle failed: {e}"),
            (Err(e), Ok(_)) => prop_assert!(false, "dijkstra failed ({e}), oracle fine"),
        }
    }

    /// The utilization map's aggregate bounds are internally consistent.
    #[test]
    fn utilization_bounds_consistent((s, _) in stage()) {
        let topo = cube();
        let intervals = Intervals::from_bounds(&s.bounds);
        let activity = ActivityMatrix::new(&s.bounds, &intervals);
        let pa = PathAssignment::lsd_to_msd(&s.tfg, &topo, &s.alloc);
        let u = UtilizationMap::compute(&pa, &s.bounds, &activity, &intervals, topo.num_links());
        prop_assert!(u.effective_peak() + 1e-12 >= u.peak());
        prop_assert!(u.hall_peak() >= 0.0);
        for l in 0..topo.num_links() {
            prop_assert!(u.link(sr_topology::LinkId(l)) <= u.peak() + 1e-9);
        }
        for &(_, _, count) in u.spots() {
            prop_assert!(count as f64 <= u.peak() + 1e-9);
        }
    }
}
