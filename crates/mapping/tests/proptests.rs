//! Property-based tests for allocation strategies.

use proptest::prelude::*;
use sr_mapping::{greedy, local_search, random, random_distinct, round_robin, Allocation};
use sr_tfg::generators::{layered_random, LayeredParams};
use sr_tfg::TaskFlowGraph;
use sr_topology::{GeneralizedHypercube, NodeId, Topology, Torus};

fn workload() -> impl Strategy<Value = TaskFlowGraph> {
    (any::<u64>(), 1usize..4, 1usize..4, 0.2f64..0.9).prop_map(|(seed, layers, width, p)| {
        layered_random(
            seed,
            &LayeredParams {
                layers,
                width,
                edge_probability: p,
                ops: (100, 1000),
                bytes: (32, 1024),
            },
        )
    })
}

fn check_valid(alloc: &Allocation, tfg: &TaskFlowGraph, topo: &dyn Topology) {
    assert_eq!(alloc.placement().len(), tfg.num_tasks());
    for &n in alloc.placement() {
        assert!(n.index() < topo.num_nodes());
    }
    // tasks_on is the inverse of node_of.
    for n in 0..topo.num_nodes() {
        for t in alloc.tasks_on(NodeId(n)) {
            assert_eq!(alloc.node_of(t), NodeId(n));
        }
    }
    // Rebuilding through the validated constructor succeeds.
    assert!(Allocation::new(alloc.placement().to_vec(), tfg, topo).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_strategies_produce_valid_allocations(tfg in workload(), seed in any::<u64>()) {
        let cube = GeneralizedHypercube::binary(4).unwrap();
        let torus = Torus::new(&[4, 4]).unwrap();
        for topo in [&cube as &dyn Topology, &torus as &dyn Topology] {
            check_valid(&round_robin(&tfg, topo), &tfg, topo);
            check_valid(&random(&tfg, topo, seed), &tfg, topo);
            check_valid(&greedy(&tfg, topo), &tfg, topo);
            check_valid(&local_search(&tfg, topo, seed, 50), &tfg, topo);
            if tfg.num_tasks() <= topo.num_nodes() {
                let d = random_distinct(&tfg, topo, seed).unwrap();
                check_valid(&d, &tfg, topo);
                prop_assert_eq!(d.nodes_used(), tfg.num_tasks());
            }
        }
    }

    #[test]
    fn local_search_never_worse_than_greedy(tfg in workload(), seed in any::<u64>()) {
        let topo = GeneralizedHypercube::binary(4).unwrap();
        let base = greedy(&tfg, &topo).comm_cost(&tfg, &topo);
        let tuned = local_search(&tfg, &topo, seed, 100).comm_cost(&tfg, &topo);
        prop_assert!(tuned <= base);
    }

    #[test]
    fn comm_cost_is_zero_iff_all_messages_local(tfg in workload(), seed in any::<u64>()) {
        let topo = GeneralizedHypercube::binary(4).unwrap();
        let alloc = random(&tfg, &topo, seed);
        let cost = alloc.comm_cost(&tfg, &topo);
        let all_local = tfg
            .messages()
            .iter()
            .all(|m| alloc.node_of(m.src()) == alloc.node_of(m.dst()));
        prop_assert_eq!(cost == 0, all_local || tfg.num_messages() == 0);
    }

    #[test]
    fn distinct_scatter_is_permutation_prefix(seed in any::<u64>()) {
        let tfg = sr_tfg::dvb(10); // 14 tasks
        let topo = GeneralizedHypercube::binary(6).unwrap();
        let a = random_distinct(&tfg, &topo, seed).unwrap();
        let distinct: std::collections::HashSet<_> = a.placement().iter().collect();
        prop_assert_eq!(distinct.len(), tfg.num_tasks());
    }
}
