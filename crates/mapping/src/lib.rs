//! Task-to-node allocation for task-flow graphs.
//!
//! The paper treats task allocation as an input ("locations of the sources
//! and destinations of messages … are fixed by task allocation", §1) but its
//! experiments obviously require one. This crate supplies the allocation
//! substrate: the validated [`Allocation`] type, a communication-cost metric
//! (Σ message-bytes × hop-distance), and four strategies —
//!
//! * [`round_robin`] — task *i* on node *i mod N*;
//! * [`random`] — seeded uniform placement (a stress baseline);
//! * [`greedy`] — topological-order placement that pulls each task toward
//!   its already-placed communication partners, preferring unused nodes;
//! * [`local_search`] — hill climbing over single-task moves and pairwise
//!   swaps starting from [`greedy`].
//!
//! # Examples
//!
//! ```
//! use sr_mapping::{greedy, Allocation};
//! use sr_topology::{GeneralizedHypercube, Topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cube = GeneralizedHypercube::binary(6)?;
//! let tfg = sr_tfg::dvb(8);
//! let alloc = greedy(&tfg, &cube);
//! assert_eq!(alloc.placement().len(), tfg.num_tasks());
//! assert_eq!(alloc.nodes_used(), tfg.num_tasks()); // one task per node
//! println!("Σ bytes×hops = {}", alloc.comm_cost(&tfg, &cube));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sr_tfg::{TaskFlowGraph, TaskId};
use sr_topology::{NodeId, Topology};

/// Errors from constructing an allocation by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AllocationError {
    /// The placement vector's length differs from the task count.
    WrongLength {
        /// Number of placements supplied.
        got: usize,
        /// Number of tasks in the graph.
        expected: usize,
    },
    /// More tasks than nodes while a one-task-per-node placement was
    /// requested.
    TooManyTasks {
        /// Tasks in the graph.
        tasks: usize,
        /// Nodes in the topology.
        nodes: usize,
    },
    /// A task was placed on a node the topology does not have.
    NodeOutOfRange {
        /// The offending task.
        task: TaskId,
        /// The out-of-range node.
        node: NodeId,
        /// Number of nodes in the topology.
        num_nodes: usize,
    },
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::WrongLength { got, expected } => {
                write!(
                    f,
                    "allocation has {got} placements but the graph has {expected} tasks"
                )
            }
            AllocationError::TooManyTasks { tasks, nodes } => {
                write!(
                    f,
                    "{tasks} tasks cannot be placed one-per-node on {nodes} nodes"
                )
            }
            AllocationError::NodeOutOfRange {
                task,
                node,
                num_nodes,
            } => {
                write!(
                    f,
                    "{task} placed on {node} but the topology has {num_nodes} nodes"
                )
            }
        }
    }
}

impl Error for AllocationError {}

/// A mapping of every task to a node.
///
/// Several tasks may share a node; the simulators serialize co-located task
/// executions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    placement: Vec<NodeId>,
}

impl Allocation {
    /// Creates an allocation from an explicit placement vector indexed by
    /// [`TaskId`].
    ///
    /// # Errors
    ///
    /// Returns [`AllocationError`] if the length mismatches the task count
    /// or any node is out of range for the topology.
    pub fn new(
        placement: Vec<NodeId>,
        tfg: &TaskFlowGraph,
        topo: &dyn Topology,
    ) -> Result<Self, AllocationError> {
        if placement.len() != tfg.num_tasks() {
            return Err(AllocationError::WrongLength {
                got: placement.len(),
                expected: tfg.num_tasks(),
            });
        }
        for (i, &node) in placement.iter().enumerate() {
            if node.index() >= topo.num_nodes() {
                return Err(AllocationError::NodeOutOfRange {
                    task: TaskId(i),
                    node,
                    num_nodes: topo.num_nodes(),
                });
            }
        }
        Ok(Allocation { placement })
    }

    /// The node hosting `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn node_of(&self, task: TaskId) -> NodeId {
        self.placement[task.index()]
    }

    /// The full placement vector, indexable by [`TaskId`].
    pub fn placement(&self) -> &[NodeId] {
        &self.placement
    }

    /// Tasks hosted on `node`, ascending.
    pub fn tasks_on(&self, node: NodeId) -> Vec<TaskId> {
        self.placement
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == node)
            .map(|(i, _)| TaskId(i))
            .collect()
    }

    /// Total communication cost: Σ over messages of `bytes × hop-distance`.
    ///
    /// Messages between co-located tasks cost nothing (they never enter the
    /// network).
    pub fn comm_cost(&self, tfg: &TaskFlowGraph, topo: &dyn Topology) -> u64 {
        tfg.messages()
            .iter()
            .map(|m| {
                let d = topo.distance(self.node_of(m.src()), self.node_of(m.dst()));
                m.bytes() * d as u64
            })
            .sum()
    }

    /// Number of distinct nodes used.
    pub fn nodes_used(&self) -> usize {
        let set: std::collections::HashSet<_> = self.placement.iter().collect();
        set.len()
    }
}

/// Places task *i* on node *i mod N*.
pub fn round_robin(tfg: &TaskFlowGraph, topo: &dyn Topology) -> Allocation {
    let n = topo.num_nodes();
    Allocation {
        placement: (0..tfg.num_tasks()).map(|i| NodeId(i % n)).collect(),
    }
}

/// Places every task uniformly at random (deterministic per `seed`).
///
/// Tasks may collide on a node; co-located tasks share one application
/// processor, which lowers the sustainable pipeline rate. Use
/// [`random_distinct`] for the paper's one-task-per-processor setting.
pub fn random(tfg: &TaskFlowGraph, topo: &dyn Topology, seed: u64) -> Allocation {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = topo.num_nodes();
    Allocation {
        placement: (0..tfg.num_tasks())
            .map(|_| NodeId(rng.gen_range(0..n)))
            .collect(),
    }
}

/// Places every task on a *distinct* uniformly random node (a random
/// partial permutation; deterministic per `seed`).
///
/// This is the paper's implicit setting: one task per application
/// processor, so the pipeline rate is limited by the longest task alone.
///
/// # Errors
///
/// Returns [`AllocationError::TooManyTasks`] when the graph has more tasks
/// than the topology has nodes.
pub fn random_distinct(
    tfg: &TaskFlowGraph,
    topo: &dyn Topology,
    seed: u64,
) -> Result<Allocation, AllocationError> {
    let n = topo.num_nodes();
    if tfg.num_tasks() > n {
        return Err(AllocationError::TooManyTasks {
            tasks: tfg.num_tasks(),
            nodes: n,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher-Yates: draw tfg.num_tasks() distinct nodes.
    let mut pool: Vec<usize> = (0..n).collect();
    let placement = (0..tfg.num_tasks())
        .map(|i| {
            let j = rng.gen_range(i..n);
            pool.swap(i, j);
            NodeId(pool[i])
        })
        .collect();
    Ok(Allocation { placement })
}

/// Greedy locality placement.
///
/// Tasks are placed in topological order. Each task goes to the node that
/// minimizes Σ `bytes × distance` to its already-placed neighbors, with a
/// strong penalty for re-using an occupied node (so placements are spread
/// out while nodes remain, mirroring the paper's one-task-per-processor
/// experiments) and ascending node id as the final tie-break.
pub fn greedy(tfg: &TaskFlowGraph, topo: &dyn Topology) -> Allocation {
    let n = topo.num_nodes();
    let mut placement: Vec<Option<NodeId>> = vec![None; tfg.num_tasks()];
    let mut load = vec![0u64; n];
    // Re-using a node is worse than any realistic communication detour.
    let occupancy_penalty: u64 = 1 + tfg.total_bytes() * topo.diameter().max(1) as u64;

    for &t in tfg.topological_order() {
        let mut best: Option<(u64, usize)> = None;
        #[allow(clippy::needless_range_loop)] // `node` is also the NodeId value
        for node in 0..n {
            let mut cost = load[node] * occupancy_penalty;
            for &m in tfg.incoming(t) {
                let msg = tfg.message(m);
                if let Some(src_node) = placement[msg.src().index()] {
                    cost += msg.bytes() * topo.distance(src_node, NodeId(node)) as u64;
                }
            }
            for &m in tfg.outgoing(t) {
                let msg = tfg.message(m);
                if let Some(dst_node) = placement[msg.dst().index()] {
                    cost += msg.bytes() * topo.distance(NodeId(node), dst_node) as u64;
                }
            }
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, node));
            }
        }
        let (_, node) = best.expect("topology has at least one node");
        placement[t.index()] = Some(node.into());
        load[node] += 1;
    }
    Allocation {
        placement: placement
            .into_iter()
            .map(|p| p.expect("all placed"))
            .collect(),
    }
}

/// Hill-climbing refinement of [`greedy`].
///
/// Performs `iterations` random proposals (single-task relocation or
/// two-task swap), keeping any that strictly lower
/// [`Allocation::comm_cost`]. Deterministic per `seed`.
pub fn local_search(
    tfg: &TaskFlowGraph,
    topo: &dyn Topology,
    seed: u64,
    iterations: usize,
) -> Allocation {
    let mut alloc = greedy(tfg, topo);
    if tfg.num_tasks() < 2 {
        return alloc;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cost = alloc.comm_cost(tfg, topo);
    for _ in 0..iterations {
        let mut candidate = alloc.clone();
        if rng.gen_bool(0.5) {
            let t = rng.gen_range(0..tfg.num_tasks());
            candidate.placement[t] = NodeId(rng.gen_range(0..topo.num_nodes()));
        } else {
            let a = rng.gen_range(0..tfg.num_tasks());
            let b = rng.gen_range(0..tfg.num_tasks());
            candidate.placement.swap(a, b);
        }
        let c = candidate.comm_cost(tfg, topo);
        if c < cost {
            cost = c;
            alloc = candidate;
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_topology::{GeneralizedHypercube, Torus};

    fn cube() -> GeneralizedHypercube {
        GeneralizedHypercube::binary(4).unwrap()
    }

    #[test]
    fn new_validates_length() {
        let g = sr_tfg::dvb(2);
        let t = cube();
        let err = Allocation::new(vec![NodeId(0)], &g, &t).unwrap_err();
        assert!(matches!(err, AllocationError::WrongLength { .. }));
    }

    #[test]
    fn new_validates_node_range() {
        let g = sr_tfg::dvb(2);
        let t = cube();
        let err = Allocation::new(vec![NodeId(99); g.num_tasks()], &g, &t).unwrap_err();
        assert!(matches!(err, AllocationError::NodeOutOfRange { .. }));
    }

    #[test]
    fn round_robin_wraps() {
        let g = sr_tfg::generators::chain(20, 10, 10);
        let t = cube();
        let a = round_robin(&g, &t);
        assert_eq!(a.node_of(TaskId(0)), NodeId(0));
        assert_eq!(a.node_of(TaskId(16)), NodeId(0));
        assert_eq!(a.tasks_on(NodeId(0)), vec![TaskId(0), TaskId(16)]);
    }

    #[test]
    fn random_is_reproducible() {
        let g = sr_tfg::dvb(4);
        let t = cube();
        assert_eq!(random(&g, &t, 11), random(&g, &t, 11));
    }

    #[test]
    fn random_distinct_is_injective_and_reproducible() {
        let g = sr_tfg::dvb(10); // 14 tasks
        let t = GeneralizedHypercube::binary(4).unwrap(); // 16 nodes
        let a = random_distinct(&g, &t, 9).unwrap();
        assert_eq!(
            a.nodes_used(),
            g.num_tasks(),
            "collision in {:?}",
            a.placement()
        );
        assert_eq!(a, random_distinct(&g, &t, 9).unwrap());
        assert_ne!(a, random_distinct(&g, &t, 10).unwrap());
    }

    #[test]
    fn random_distinct_rejects_overflow() {
        let g = sr_tfg::dvb(20); // 24 tasks
        let t = GeneralizedHypercube::binary(4).unwrap(); // 16 nodes
        assert!(matches!(
            random_distinct(&g, &t, 0),
            Err(AllocationError::TooManyTasks {
                tasks: 24,
                nodes: 16
            })
        ));
    }

    #[test]
    fn greedy_uses_distinct_nodes_when_possible() {
        let g = sr_tfg::dvb(8); // 12 tasks on 16 nodes
        let t = cube();
        let a = greedy(&g, &t);
        assert_eq!(a.nodes_used(), g.num_tasks());
    }

    #[test]
    fn greedy_places_communicating_tasks_near() {
        let g = sr_tfg::generators::chain(4, 10, 1000);
        let t = Torus::new(&[4, 4]).unwrap();
        let a = greedy(&g, &t);
        // Consecutive chain stages should be adjacent on an empty torus.
        for w in [(0usize, 1usize), (1, 2), (2, 3)] {
            let d = t.distance(a.node_of(TaskId(w.0)), a.node_of(TaskId(w.1)));
            assert_eq!(d, 1, "stage {w:?} placed {d} hops apart");
        }
    }

    #[test]
    fn comm_cost_zero_when_colocated() {
        let g = sr_tfg::generators::chain(3, 10, 100);
        let t = cube();
        let a = Allocation::new(vec![NodeId(5); 3], &g, &t).unwrap();
        assert_eq!(a.comm_cost(&g, &t), 0);
        assert_eq!(a.nodes_used(), 1);
    }

    #[test]
    fn local_search_never_worse_than_greedy() {
        let g = sr_tfg::dvb(10);
        let t = Torus::new(&[4, 4, 4]).unwrap();
        let base = greedy(&g, &t).comm_cost(&g, &t);
        let tuned = local_search(&g, &t, 3, 500).comm_cost(&g, &t);
        assert!(tuned <= base);
    }

    #[test]
    fn single_task_graph() {
        let g = sr_tfg::generators::chain(1, 10, 10);
        let t = cube();
        let a = local_search(&g, &t, 0, 10);
        assert_eq!(a.placement().len(), 1);
        assert_eq!(a.comm_cost(&g, &t), 0);
    }
}
