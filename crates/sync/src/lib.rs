//! Communication-processor clock synchronization.
//!
//! Scheduled routing's switching schedules are executed *independently* by
//! every CP, so their clocks must agree: the paper (§7) proposes letting "a
//! time interval equal to or greater than **twice the maximum difference
//! between two clocks** elapse before starting transmission" and asks that
//! "the tightness of CP synchronization required should be studied", with
//! synchronization achieved "by periodic synchronizing messages".
//!
//! This crate provides that study substrate:
//!
//! * a **drifting-clock model** ([`Clock`], [`ClockEnsemble`]): each CP's
//!   oscillator runs at `1 + drift` with an initial offset;
//! * a **spanning-tree synchronization protocol** ([`simulate_sync`]): a
//!   master's timestamp propagates over a BFS tree of the real topology;
//!   each hop adds bounded delay jitter the receiver cannot observe, so
//!   residual error accumulates with tree depth and then grows with drift
//!   until the next round;
//! * **guard-time sizing** ([`SyncOutcome::required_guard`]): the paper's
//!   `2 × max skew` rule, ready to feed into
//!   `sr_core::CompileConfig::guard_time`.
//!
//! # Examples
//!
//! ```
//! use sr_sync::{ClockEnsemble, SyncConfig, simulate_sync};
//! use sr_topology::{GeneralizedHypercube, NodeId, Topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cube = GeneralizedHypercube::binary(6)?;
//! let clocks = ClockEnsemble::random(cube.num_nodes(), 1, 50.0, 5.0);
//! let outcome = simulate_sync(&cube, NodeId(0), &clocks, &SyncConfig::default(), 20, 9);
//! println!("skew ≤ {:.3} µs -> guard {:.3} µs",
//!          outcome.max_skew(), outcome.required_guard());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sr_topology::{NodeId, Topology};

/// One CP's free-running oscillator: at true time `t` (µs) it reads
/// `t · (1 + drift) + offset`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    /// Fractional rate error (e.g. `50e-6` = 50 ppm fast).
    pub drift: f64,
    /// Initial offset at `t = 0`, µs.
    pub offset: f64,
}

impl Clock {
    /// The clock's reading at true time `t`, µs.
    pub fn read(&self, t: f64) -> f64 {
        t * (1.0 + self.drift) + self.offset
    }
}

/// The clocks of every CP in the machine, indexable by [`NodeId`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClockEnsemble {
    clocks: Vec<Clock>,
}

impl ClockEnsemble {
    /// Clocks with uniformly random drifts in `±max_drift_ppm` and offsets
    /// in `±max_offset` µs (deterministic per `seed`).
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or a bound is negative/non-finite.
    pub fn random(nodes: usize, seed: u64, max_drift_ppm: f64, max_offset: f64) -> Self {
        assert!(nodes > 0, "need at least one clock");
        assert!(
            max_drift_ppm >= 0.0 && max_drift_ppm.is_finite(),
            "drift bound must be a non-negative finite ppm value"
        );
        assert!(
            max_offset >= 0.0 && max_offset.is_finite(),
            "offset bound must be non-negative and finite"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let clocks = (0..nodes)
            .map(|_| Clock {
                drift: rng.gen_range(-max_drift_ppm..=max_drift_ppm) * 1e-6,
                offset: rng.gen_range(-max_offset..=max_offset),
            })
            .collect();
        ClockEnsemble { clocks }
    }

    /// Identical perfect clocks (zero drift, zero offset).
    pub fn perfect(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one clock");
        ClockEnsemble {
            clocks: vec![
                Clock {
                    drift: 0.0,
                    offset: 0.0
                };
                nodes
            ],
        }
    }

    /// The clock of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn clock(&self, node: NodeId) -> Clock {
        self.clocks[node.index()]
    }

    /// Number of clocks.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// `true` when the ensemble is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Worst pairwise skew of the *uncorrected* clocks at true time `t`.
    pub fn raw_skew(&self, t: f64) -> f64 {
        let readings: Vec<f64> = self.clocks.iter().map(|c| c.read(t)).collect();
        let max = readings.iter().cloned().fold(f64::MIN, f64::max);
        let min = readings.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }
}

/// Parameters of the periodic synchronization protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncConfig {
    /// Interval between sync rounds, µs.
    pub interval: f64,
    /// Nominal per-hop propagation+processing delay of a sync message, µs
    /// (known to and compensated by the receivers).
    pub hop_delay: f64,
    /// Worst-case unobservable per-hop delay jitter, µs (±).
    pub hop_jitter: f64,
}

impl Default for SyncConfig {
    /// 1 ms rounds, 0.1 µs nominal hop delay, ±0.05 µs jitter — loose
    /// early-90s figures.
    fn default() -> Self {
        SyncConfig {
            interval: 1000.0,
            hop_delay: 0.1,
            hop_jitter: 0.05,
        }
    }
}

/// The result of simulating the protocol for several rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncOutcome {
    per_round_skew: Vec<f64>,
    tree_depth: usize,
}

impl SyncOutcome {
    /// Worst pairwise corrected-clock skew observed in each round (the
    /// maximum over the round's duration), µs.
    pub fn per_round_skew(&self) -> &[f64] {
        &self.per_round_skew
    }

    /// The worst skew across all rounds, µs.
    pub fn max_skew(&self) -> f64 {
        self.per_round_skew.iter().cloned().fold(0.0, f64::max)
    }

    /// Depth of the synchronization tree used.
    pub fn tree_depth(&self) -> usize {
        self.tree_depth
    }

    /// The paper's guard rule: transmissions should wait **twice the
    /// maximum difference between two clocks** — feed this into
    /// `sr_core::CompileConfig::guard_time`.
    pub fn required_guard(&self) -> f64 {
        2.0 * self.max_skew()
    }
}

/// Simulates `rounds` rounds of spanning-tree synchronization.
///
/// Each round, the `master`'s clock value propagates along a BFS tree of
/// `topo`; every hop delays it by `hop_delay ± jitter` (jitter drawn per
/// hop per round, deterministic for `seed`), and the receiver corrects its
/// clock assuming the nominal delay — so after the round, node `v`'s
/// correction error is the sum of its path's jitters, and the error then
/// grows by relative drift until the next round. The reported per-round
/// skew is the worst pairwise difference at the *end* of the round (the
/// instant before re-synchronization, when skew is largest).
///
/// # Panics
///
/// Panics if the ensemble size differs from the topology's node count or
/// `master` is out of range.
pub fn simulate_sync(
    topo: &dyn Topology,
    master: NodeId,
    clocks: &ClockEnsemble,
    config: &SyncConfig,
    rounds: usize,
    seed: u64,
) -> SyncOutcome {
    assert_eq!(
        clocks.len(),
        topo.num_nodes(),
        "one clock per node required"
    );
    assert!(master.index() < topo.num_nodes(), "master out of range");
    let mut rng = StdRng::seed_from_u64(seed);

    // BFS tree from the master.
    let mut parent: Vec<Option<NodeId>> = vec![None; topo.num_nodes()];
    let mut depth = vec![usize::MAX; topo.num_nodes()];
    depth[master.index()] = 0;
    let mut queue = std::collections::VecDeque::from([master]);
    let mut max_depth = 0;
    while let Some(v) = queue.pop_front() {
        for &w in topo.neighbors(v) {
            if depth[w.index()] == usize::MAX {
                depth[w.index()] = depth[v.index()] + 1;
                max_depth = max_depth.max(depth[w.index()]);
                parent[w.index()] = Some(v);
                queue.push_back(w);
            }
        }
    }

    // Corrected-clock error of each node relative to the master, µs.
    let mut error: Vec<f64> = (0..topo.num_nodes())
        .map(|i| clocks.clocks[i].offset - clocks.clock(master).offset)
        .collect();
    let mut per_round_skew = Vec::with_capacity(rounds);

    // Process nodes in BFS order so parents sync before children.
    let order: Vec<NodeId> = {
        let mut idx: Vec<usize> = (0..topo.num_nodes())
            .filter(|&i| depth[i] != usize::MAX)
            .collect();
        idx.sort_by_key(|&i| depth[i]);
        idx.into_iter().map(NodeId).collect()
    };

    for _ in 0..rounds {
        // Sync: each node inherits its parent's post-sync error plus this
        // hop's unobservable jitter.
        for &v in &order {
            if let Some(p) = parent[v.index()] {
                let jitter = rng.gen_range(-config.hop_jitter..=config.hop_jitter);
                error[v.index()] = error[p.index()] + jitter;
            } else {
                error[v.index()] = 0.0;
            }
        }
        // Drift until the end of the round.
        for (i, e) in error.iter_mut().enumerate() {
            *e += (clocks.clocks[i].drift - clocks.clock(master).drift) * config.interval;
        }
        let max = error.iter().cloned().fold(f64::MIN, f64::max);
        let min = error.iter().cloned().fold(f64::MAX, f64::min);
        per_round_skew.push(max - min);
    }

    SyncOutcome {
        per_round_skew,
        tree_depth: max_depth,
    }
}

/// Analytic worst-case bound on post-sync skew for the same protocol:
/// `2·(depth·jitter + max_relative_drift·interval)` is an upper bound on
/// the worst pairwise difference at round end (each of two nodes can err
/// by `depth·jitter` in opposite directions plus opposite drift).
pub fn skew_bound(tree_depth: usize, config: &SyncConfig, max_drift_ppm: f64) -> f64 {
    2.0 * (tree_depth as f64 * config.hop_jitter + 2.0 * max_drift_ppm * 1e-6 * config.interval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_topology::{GeneralizedHypercube, Torus};

    #[test]
    fn perfect_clocks_stay_synchronized() {
        let cube = GeneralizedHypercube::binary(4).unwrap();
        let clocks = ClockEnsemble::perfect(16);
        assert_eq!(clocks.raw_skew(1e6), 0.0);
        let out = simulate_sync(
            &cube,
            NodeId(0),
            &clocks,
            &SyncConfig {
                hop_jitter: 0.0,
                ..SyncConfig::default()
            },
            10,
            1,
        );
        assert_eq!(out.max_skew(), 0.0);
        assert_eq!(out.required_guard(), 0.0);
    }

    #[test]
    fn drift_alone_grows_between_rounds() {
        let cube = GeneralizedHypercube::binary(3).unwrap();
        let clocks = ClockEnsemble::random(8, 5, 100.0, 0.0); // ±100 ppm, no offset
        let cfg = SyncConfig {
            interval: 1000.0,
            hop_delay: 0.0,
            hop_jitter: 0.0,
        };
        let out = simulate_sync(&cube, NodeId(0), &clocks, &cfg, 5, 1);
        // With zero jitter, the per-round skew is purely the drift spread
        // over one interval: bounded by 2 × 100 ppm × 1000 µs = 0.2 µs.
        assert!(out.max_skew() > 0.0);
        assert!(out.max_skew() <= 0.2 + 1e-12, "skew {}", out.max_skew());
        // Identical every round (drift is constant).
        let s = out.per_round_skew();
        assert!(s.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
    }

    #[test]
    fn jitter_accumulates_with_tree_depth() {
        // An 8-ring (depth 4) accumulates more jitter than a 3-cube
        // (depth 3) under identical parameters — on average and in bound.
        let ring = Torus::new(&[8]).unwrap();
        let cube = GeneralizedHypercube::binary(3).unwrap();
        let clocks = ClockEnsemble::perfect(8);
        let cfg = SyncConfig {
            interval: 1000.0,
            hop_delay: 0.1,
            hop_jitter: 0.5,
        };
        let ring_out = simulate_sync(&ring, NodeId(0), &clocks, &cfg, 50, 1);
        let cube_out = simulate_sync(&cube, NodeId(0), &clocks, &cfg, 50, 1);
        assert_eq!(ring_out.tree_depth(), 4);
        assert_eq!(cube_out.tree_depth(), 3);
        assert!(
            ring_out.max_skew() <= skew_bound(4, &cfg, 0.0) + 1e-9,
            "ring skew {} above bound",
            ring_out.max_skew()
        );
        assert!(cube_out.max_skew() <= skew_bound(3, &cfg, 0.0) + 1e-9);
    }

    #[test]
    fn simulated_skew_within_analytic_bound() {
        let cube = GeneralizedHypercube::binary(6).unwrap();
        let clocks = ClockEnsemble::random(64, 3, 50.0, 10.0);
        let cfg = SyncConfig::default();
        let out = simulate_sync(&cube, NodeId(0), &clocks, &cfg, 40, 7);
        let bound = skew_bound(out.tree_depth(), &cfg, 50.0);
        assert!(
            out.max_skew() <= bound + 1e-9,
            "skew {} exceeds bound {bound}",
            out.max_skew()
        );
        // Initial offsets are corrected away: skew is far below the raw one.
        assert!(out.max_skew() < clocks.raw_skew(0.0));
    }

    #[test]
    fn shorter_interval_tightens_skew() {
        let cube = GeneralizedHypercube::binary(4).unwrap();
        let clocks = ClockEnsemble::random(16, 9, 200.0, 5.0);
        let fast = SyncConfig {
            interval: 100.0,
            hop_delay: 0.0,
            hop_jitter: 0.0,
        };
        let slow = SyncConfig {
            interval: 10_000.0,
            hop_delay: 0.0,
            hop_jitter: 0.0,
        };
        let f = simulate_sync(&cube, NodeId(0), &clocks, &fast, 10, 1);
        let s = simulate_sync(&cube, NodeId(0), &clocks, &slow, 10, 1);
        assert!(f.max_skew() < s.max_skew());
        assert!(f.required_guard() < s.required_guard());
    }

    #[test]
    #[should_panic(expected = "one clock per node")]
    fn ensemble_size_checked() {
        let cube = GeneralizedHypercube::binary(3).unwrap();
        let clocks = ClockEnsemble::perfect(4);
        let _ = simulate_sync(&cube, NodeId(0), &clocks, &SyncConfig::default(), 1, 1);
    }

    #[test]
    fn clock_reading() {
        let c = Clock {
            drift: 100e-6,
            offset: 2.0,
        };
        assert!((c.read(10_000.0) - 10_003.0).abs() < 1e-9);
    }
}
