//! Property-based tests of the wormhole simulator on random workloads.

use proptest::prelude::*;
use sr_tfg::generators::{layered_random, LayeredParams};
use sr_tfg::Timing;
use sr_topology::{GeneralizedHypercube, Topology, Torus};
use sr_wormhole::{SimConfig, WormholeSim};

fn params() -> impl Strategy<Value = LayeredParams> {
    (2usize..4, 1usize..4, 0.3f64..0.9).prop_map(|(layers, width, p)| LayeredParams {
        layers,
        width,
        edge_probability: p,
        ops: (300, 1500),
        bytes: (64, 3200),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Determinism: identical configurations produce identical results.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), p in params(), alloc_seed in any::<u64>()) {
        let topo = GeneralizedHypercube::binary(4).unwrap();
        let tfg = layered_random(seed, &p);
        let timing = Timing::new(64.0, 20.0);
        let alloc = sr_mapping::random(&tfg, &topo, alloc_seed);
        let cfg = SimConfig { invocations: 12, warmup: 2 };
        let period = timing.longest_task(&tfg) * 1.5;
        let run = || {
            WormholeSim::new(&topo, &tfg, &alloc, &timing)
                .unwrap()
                .run(period, &cfg)
                .unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.records(), b.records());
        prop_assert_eq!(a.trace().flights(), b.trace().flights());
    }

    /// Causality and conservation: inputs precede outputs, every completed
    /// invocation delivers every message exactly once, blocked time is
    /// non-negative, occupancies are valid fractions.
    #[test]
    fn causality_and_conservation(
        seed in any::<u64>(),
        p in params(),
        alloc_seed in any::<u64>(),
        torus in any::<bool>(),
    ) {
        let topo: Box<dyn Topology> = if torus {
            Box::new(Torus::new(&[4, 4]).unwrap())
        } else {
            Box::new(GeneralizedHypercube::binary(4).unwrap())
        };
        let tfg = layered_random(seed, &p);
        let timing = Timing::new(64.0, 20.0);
        let alloc = sr_mapping::random(&tfg, topo.as_ref(), alloc_seed);
        let cfg = SimConfig { invocations: 10, warmup: 2 };
        let period = timing.longest_task(&tfg) * 1.2;
        let res = WormholeSim::new(topo.as_ref(), &tfg, &alloc, &timing)
            .unwrap()
            .run(period, &cfg)
            .unwrap();

        for r in res.records() {
            prop_assert!(r.output_time >= r.input_time - 1e-9);
        }
        // Message conservation over completed invocations.
        let completed = res.records().len();
        for inv in 0..completed {
            let delivered = res
                .trace()
                .flights()
                .iter()
                .filter(|f| f.invocation == inv)
                .count();
            prop_assert_eq!(delivered, tfg.num_messages(),
                "invocation {} delivered {} of {}", inv, delivered, tfg.num_messages());
        }
        for f in res.trace().flights() {
            prop_assert!(f.blocked() >= -1e-9);
            prop_assert!(f.delivered_at >= f.path_complete_at - 1e-9);
        }
        for l in 0..topo.num_links() {
            let o = res.link_occupancy(sr_topology::LinkId(l));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&o));
        }
    }

    /// Virtual channels never *create* deadlock, and under no contention
    /// they only scale transmission times.
    #[test]
    fn more_virtual_channels_never_deadlock_more(
        seed in any::<u64>(),
        alloc_seed in any::<u64>(),
    ) {
        let topo = Torus::new(&[4, 4]).unwrap();
        let p = LayeredParams {
            layers: 3, width: 3, edge_probability: 0.6,
            ops: (500, 1500), bytes: (640, 6400),
        };
        let tfg = layered_random(seed, &p);
        let timing = Timing::new(64.0, 20.0);
        let alloc = sr_mapping::random(&tfg, &topo, alloc_seed);
        let cfg = SimConfig { invocations: 10, warmup: 2 };
        let period = timing.longest_task(&tfg); // saturating
        let run = |vc: usize| {
            WormholeSim::new(&topo, &tfg, &alloc, &timing)
                .unwrap()
                .with_virtual_channels(vc)
                .unwrap()
                .run(period, &cfg)
                .unwrap()
        };
        let base = run(1);
        let multi = run(4);
        if !base.deadlocked() {
            // 4 VCs admit strictly more interleavings but the acquisition
            // graph only loses edges — no new deadlocks.
            prop_assert!(!multi.deadlocked() || multi.records().len() >= base.records().len());
        }
    }
}
