use std::error::Error;
use std::fmt;

use sr_mapping::Allocation;
use sr_tfg::{MessageId, TaskFlowGraph, Timing};
use sr_topology::{LinkId, Path, Topology};

use crate::engine::Engine;
use crate::result::SimResult;

/// Errors from configuring or running a wormhole simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The allocation does not cover this TFG/topology pair.
    AllocationMismatch {
        /// Number of placements in the allocation.
        alloc_tasks: usize,
        /// Number of tasks in the graph.
        tfg_tasks: usize,
    },
    /// A custom route set had the wrong number of paths.
    RouteCount {
        /// Paths supplied.
        got: usize,
        /// Messages in the graph.
        expected: usize,
    },
    /// A custom route does not start/end at the allocated nodes, or is not a
    /// valid walk in the topology.
    BadRoute {
        /// The message whose route is invalid.
        message: MessageId,
    },
    /// The input period must be positive and finite.
    InvalidPeriod(f64),
    /// Too few invocations for the requested warmup (need at least
    /// `warmup + 2` to measure one steady-state output interval).
    TooFewInvocations {
        /// Invocations requested.
        invocations: usize,
        /// Warmup requested.
        warmup: usize,
    },
    /// Virtual-channel count must be at least 1.
    InvalidVirtualChannels,
    /// Adaptive routing needs at least one candidate path.
    InvalidPathCap,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::AllocationMismatch {
                alloc_tasks,
                tfg_tasks,
            } => write!(
                f,
                "allocation covers {alloc_tasks} tasks but the graph has {tfg_tasks}"
            ),
            SimError::RouteCount { got, expected } => {
                write!(f, "{got} routes supplied for {expected} messages")
            }
            SimError::BadRoute { message } => {
                write!(f, "route for {message} is not a valid allocated path")
            }
            SimError::InvalidPeriod(p) => {
                write!(f, "input period must be positive and finite, got {p}")
            }
            SimError::TooFewInvocations {
                invocations,
                warmup,
            } => write!(
                f,
                "{invocations} invocations cannot cover a warmup of {warmup} plus measurement"
            ),
            SimError::InvalidVirtualChannels => {
                write!(f, "virtual-channel count must be at least 1")
            }
            SimError::InvalidPathCap => {
                write!(f, "adaptive routing needs a path cap of at least 1")
            }
        }
    }
}

impl Error for SimError {}

/// Run-length parameters for a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Total TFG invocations to simulate.
    pub invocations: usize,
    /// Leading invocations excluded from statistics (pipeline fill).
    pub warmup: usize,
}

impl Default for SimConfig {
    /// 150 invocations with a 30-invocation warmup — long enough to drain
    /// pipeline-fill backlogs and expose the alternating-delay cycles of §3
    /// at every load the paper sweeps.
    fn default() -> Self {
        SimConfig {
            invocations: 150,
            warmup: 30,
        }
    }
}

/// A configured wormhole-routing simulation (topology + TFG + allocation +
/// timing + routes).
///
/// By default every message follows the deterministic dimension-order
/// (LSD-to-MSD) route between its allocated endpoints, as in the paper's
/// baseline machines; [`WormholeSim::with_routes`] substitutes custom paths
/// (e.g. to replay a scheduled-routing path assignment under wormhole
/// flow-control).
pub struct WormholeSim<'a> {
    topo: &'a dyn Topology,
    tfg: &'a TaskFlowGraph,
    alloc: &'a Allocation,
    timing: &'a Timing,
    /// Candidate paths per message (one = deterministic; several =
    /// adaptive selection at injection).
    paths: Vec<Vec<Path>>,
    routes: Vec<Vec<LinkId>>,
    virtual_channels: usize,
}

impl fmt::Debug for WormholeSim<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WormholeSim")
            .field("topology", &self.topo.name())
            .field("tasks", &self.tfg.num_tasks())
            .field("messages", &self.tfg.num_messages())
            .finish()
    }
}

impl<'a> WormholeSim<'a> {
    /// Creates a simulation with dimension-order routing.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AllocationMismatch`] if `alloc` was built for a
    /// different task count.
    pub fn new(
        topo: &'a dyn Topology,
        tfg: &'a TaskFlowGraph,
        alloc: &'a Allocation,
        timing: &'a Timing,
    ) -> Result<Self, SimError> {
        if alloc.placement().len() != tfg.num_tasks() {
            return Err(SimError::AllocationMismatch {
                alloc_tasks: alloc.placement().len(),
                tfg_tasks: tfg.num_tasks(),
            });
        }
        let paths: Vec<Vec<Path>> = tfg
            .messages()
            .iter()
            .map(|m| {
                let src = alloc.node_of(m.src());
                let dst = alloc.node_of(m.dst());
                vec![topo.dimension_order_path(src, dst)]
            })
            .collect();
        let routes = paths.iter().map(|p| p[0].links(topo)).collect();
        Ok(WormholeSim {
            topo,
            tfg,
            alloc,
            timing,
            paths,
            routes,
            virtual_channels: 1,
        })
    }

    /// Switches to **adaptive cut-through routing** (§3's second scenario,
    /// after \[Nga89\]): each message considers up to `path_cap` shortest
    /// paths and, at injection, commits to the first one whose entry
    /// channel is free (falling back to the shortest entry queue). The
    /// paper argues — and the tests demonstrate — that output inconsistency
    /// persists under this policy too, because commitment is still
    /// oblivious to invocation deadlines.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPathCap`] for `path_cap = 0`.
    pub fn with_adaptive_routing(mut self, path_cap: usize) -> Result<Self, SimError> {
        if path_cap == 0 {
            return Err(SimError::InvalidPathCap);
        }
        self.paths = self
            .tfg
            .messages()
            .iter()
            .map(|m| {
                let src = self.alloc.node_of(m.src());
                let dst = self.alloc.node_of(m.dst());
                self.topo.shortest_paths(src, dst, path_cap)
            })
            .collect();
        self.routes = self.paths.iter().map(|p| p[0].links(self.topo)).collect();
        Ok(self)
    }

    /// Switches to the paper's "stricter model" (§6): every physical link is
    /// multiplexed between `n` virtual channels, so up to `n` messages share
    /// it concurrently while each sees only `1/n` of the bandwidth. The
    /// paper conjectures this increases the instances of output
    /// inconsistency (messages occupy their paths longer).
    ///
    /// `n = 1` is the base model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidVirtualChannels`] for `n = 0`.
    pub fn with_virtual_channels(mut self, n: usize) -> Result<Self, SimError> {
        if n == 0 {
            return Err(SimError::InvalidVirtualChannels);
        }
        self.virtual_channels = n;
        Ok(self)
    }

    /// The number of virtual channels per link in force.
    pub fn virtual_channels(&self) -> usize {
        self.virtual_channels
    }

    /// Replaces the per-message routes (one [`Path`] per message, in
    /// [`MessageId`] order).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RouteCount`] on arity mismatch and
    /// [`SimError::BadRoute`] if a path is not a valid topology walk from the
    /// message's allocated source node to its allocated destination node.
    pub fn with_routes(mut self, paths: &[Path]) -> Result<Self, SimError> {
        if paths.len() != self.tfg.num_messages() {
            return Err(SimError::RouteCount {
                got: paths.len(),
                expected: self.tfg.num_messages(),
            });
        }
        let mut routes = Vec::with_capacity(paths.len());
        for (i, (path, msg)) in paths.iter().zip(self.tfg.messages()).enumerate() {
            let src = self.alloc.node_of(msg.src());
            let dst = self.alloc.node_of(msg.dst());
            if path.source() != src || path.destination() != dst || !path.validate(self.topo) {
                return Err(SimError::BadRoute {
                    message: MessageId(i),
                });
            }
            routes.push(path.links(self.topo));
        }
        self.routes = routes;
        self.paths = paths.iter().map(|p| vec![p.clone()]).collect();
        Ok(self)
    }

    /// The directed-channel candidate routes of each message: wormhole
    /// machines have a *pair* of unidirectional channels per adjacent node
    /// pair (the paper's "channel"), so the channel id is
    /// `2·link + direction`.
    fn channel_routes(&self) -> Vec<Vec<Vec<usize>>> {
        let encode = |path: &Path| -> Vec<usize> {
            path.nodes()
                .windows(2)
                .map(|w| {
                    let link = self
                        .topo
                        .link_between(w[0], w[1])
                        .expect("validated path hop");
                    let dir = usize::from(w[0] > w[1]);
                    link.index() * 2 + dir
                })
                .collect()
        };
        self.paths
            .iter()
            .map(|cands| cands.iter().map(encode).collect())
            .collect()
    }

    /// The per-message link routes in force, indexable by [`MessageId`].
    pub fn routes(&self) -> &[Vec<LinkId>] {
        &self.routes
    }

    /// Simulates `config.invocations` periodic invocations at input period
    /// `period` (µs) and returns the per-invocation records.
    ///
    /// The run always terminates: if the network deadlocks (possible under
    /// hold-while-blocked capture, e.g. on torus wraparound rings), the
    /// result carries the completed prefix and
    /// [`SimResult::deadlocked`] is `true`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPeriod`] or [`SimError::TooFewInvocations`]
    /// for malformed run parameters.
    pub fn run(&self, period: f64, config: &SimConfig) -> Result<SimResult, SimError> {
        self.run_with_events(period, config, &sr_obs::NO_EVENTS)
    }

    /// Like [`WormholeSim::run`], but narrates every engine transition —
    /// injection, header block, channel acquire/release, delivery, output —
    /// into `sink` as [`sr_obs::SimEvent`]s (directed channel ids, µs of
    /// simulated time). Pass [`sr_obs::NO_EVENTS`] for the free path; the
    /// engine checks [`sr_obs::EventSink::enabled`] once and pays a single
    /// branch per site when disabled.
    ///
    /// The simulation is single-threaded and deterministic, so the event
    /// stream (and its length) is identical across runs and unaffected by
    /// any compile-side `parallelism` setting.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPeriod`] or [`SimError::TooFewInvocations`]
    /// for malformed run parameters.
    pub fn run_with_events(
        &self,
        period: f64,
        config: &SimConfig,
        sink: &dyn sr_obs::EventSink,
    ) -> Result<SimResult, SimError> {
        if !(period.is_finite() && period > 0.0) {
            return Err(SimError::InvalidPeriod(period));
        }
        if config.invocations < config.warmup + 2 {
            return Err(SimError::TooFewInvocations {
                invocations: config.invocations,
                warmup: config.warmup,
            });
        }
        let channels = self.channel_routes();
        let engine = Engine::new(
            self.tfg,
            self.alloc,
            self.timing,
            &channels,
            self.topo.num_links() * 2,
            period,
            config.invocations,
            self.virtual_channels,
            sink,
        );
        Ok(engine.run(config.warmup))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_tfg::{generators, TfgBuilder};
    use sr_topology::{GeneralizedHypercube, NodeId, Torus};

    fn cube(dims: usize) -> GeneralizedHypercube {
        GeneralizedHypercube::binary(dims).unwrap()
    }

    /// A 2-task pipeline on adjacent nodes: no contention, so pipelining is
    /// perfect and latency equals the critical path.
    #[test]
    fn uncontended_chain_has_constant_output() {
        let topo = cube(3);
        let tfg = generators::chain(3, 1000, 640);
        let timing = Timing::new(64.0, 100.0); // exec 10, tx 10
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1), NodeId(3)], &tfg, &topo).unwrap();
        let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).unwrap();
        let res = sim.run(20.0, &SimConfig::default()).unwrap();
        assert!(!res.deadlocked());
        assert!(!res.has_output_inconsistency(1e-6));
        let lat = res.latency_stats();
        // 10 + 10 + 10 + 10 + 10 = 50.
        assert!((lat.mean - 50.0).abs() < 1e-6, "latency {lat:?}");
        assert!((lat.max - lat.min).abs() < 1e-9);
    }

    /// Saturating the slowest stage (period = exec time) still pipelines.
    #[test]
    fn max_rate_pipelining_without_contention() {
        let topo = cube(3);
        let tfg = generators::chain(4, 1000, 320);
        let timing = Timing::new(64.0, 100.0); // exec 10, tx 5
        let alloc = Allocation::new(
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(7)],
            &tfg,
            &topo,
        )
        .unwrap();
        let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).unwrap();
        let res = sim.run(10.0, &SimConfig::default()).unwrap();
        assert!(!res.has_output_inconsistency(1e-6));
        assert!((res.interval_stats().mean - 10.0).abs() < 1e-6);
    }

    /// The §3 Claim scenario: two large messages of *different invocations*
    /// share a link; FCFS favors the older invocation's message and the
    /// output interval alternates (output inconsistency).
    #[test]
    fn shared_link_produces_output_inconsistency() {
        let topo = cube(3);
        // T0 -(M1 big)-> T1 -(tiny)-> T2 -(M2 big)-> T3, all on the critical
        // path; route M1 and M2 over a common link by explicit paths.
        let tfg = generators::claim_chain(1000, 6400, 64);
        let timing = Timing::new(64.0, 100.0); // exec 10, big tx 100, tiny 1
                                               // Both big messages must traverse the directed channel N0->N1:
                                               // M1 = T0(N0) -> T1(N1); M2 = T2(N0) -> T3(N3), whose dimension-
                                               // order route N0 -> N1 -> N3 starts with the same channel.
        let alloc = Allocation::new(
            vec![NodeId(0), NodeId(1), NodeId(0), NodeId(3)],
            &tfg,
            &topo,
        )
        .unwrap();
        let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).unwrap();
        // Period between exec and the point where invocations decouple:
        // big-tx (100) spans several periods of 110 -> M2 of invocation j
        // and M1 of invocation j+1 collide on link 0-1.
        let res = sim
            .run(
                110.0,
                &SimConfig {
                    invocations: 40,
                    warmup: 6,
                },
            )
            .unwrap();
        assert!(!res.deadlocked());
        assert!(
            res.has_output_inconsistency(1e-6),
            "expected OI; intervals {:?}",
            res.interval_stats()
        );
        // Long-run average throughput still matches the input rate (the
        // delays alternate rather than accumulate).
        let s = res.interval_stats();
        assert!(s.spread() > 1.0, "spikes should be visible: {s:?}");
    }

    #[test]
    fn colocated_tasks_serialize_on_one_ap() {
        let topo = cube(2);
        let tfg = generators::chain(2, 1000, 64);
        let timing = Timing::new(64.0, 100.0); // exec 10 each
        let alloc = Allocation::new(vec![NodeId(0), NodeId(0)], &tfg, &topo).unwrap();
        let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).unwrap();
        let res = sim.run(20.0, &SimConfig::default()).unwrap();
        // Both tasks on one AP: latency = 10 + 10 (message is local/instant).
        assert!((res.latency_stats().mean - 20.0).abs() < 1e-6);
        assert!(!res.has_output_inconsistency(1e-6));
    }

    #[test]
    fn saturated_input_rate_grows_latency_monotonically() {
        let topo = cube(2);
        let tfg = generators::chain(2, 1000, 64);
        let timing = Timing::new(64.0, 100.0); // exec 10
        let alloc = Allocation::new(vec![NodeId(0), NodeId(0)], &tfg, &topo).unwrap();
        let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).unwrap();
        // Period 5 < 2 tasks x 10 on one AP: backlog grows forever.
        let res = sim
            .run(
                5.0,
                &SimConfig {
                    invocations: 30,
                    warmup: 0,
                },
            )
            .unwrap();
        let lats = res.latencies();
        assert!(lats.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        assert!(lats.last().unwrap() > &100.0);
    }

    #[test]
    fn run_parameter_validation() {
        let topo = cube(2);
        let tfg = generators::chain(2, 10, 10);
        let timing = Timing::new(1.0, 1.0);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1)], &tfg, &topo).unwrap();
        let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).unwrap();
        assert!(matches!(
            sim.run(0.0, &SimConfig::default()),
            Err(SimError::InvalidPeriod(_))
        ));
        assert!(matches!(
            sim.run(
                10.0,
                &SimConfig {
                    invocations: 3,
                    warmup: 5
                }
            ),
            Err(SimError::TooFewInvocations { .. })
        ));
    }

    #[test]
    fn custom_routes_validated() {
        let topo = cube(3);
        let tfg = generators::chain(2, 10, 10);
        let timing = Timing::new(1.0, 1.0);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(3)], &tfg, &topo).unwrap();
        let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).unwrap();

        // Wrong arity.
        let err = WormholeSim::new(&topo, &tfg, &alloc, &timing)
            .unwrap()
            .with_routes(&[])
            .unwrap_err();
        assert!(matches!(err, SimError::RouteCount { .. }));

        // Wrong endpoints.
        let bad = Path::new(vec![NodeId(0), NodeId(1)]);
        let err = WormholeSim::new(&topo, &tfg, &alloc, &timing)
            .unwrap()
            .with_routes(&[bad])
            .unwrap_err();
        assert!(matches!(err, SimError::BadRoute { .. }));

        // A valid non-minimal-order alternative route is accepted.
        let alt = Path::new(vec![NodeId(0), NodeId(2), NodeId(3)]);
        let ok = WormholeSim::new(&topo, &tfg, &alloc, &timing)
            .unwrap()
            .with_routes(&[alt])
            .unwrap();
        assert_eq!(ok.routes()[0].len(), 2);
        drop(sim);
    }

    #[test]
    fn zero_virtual_channels_rejected() {
        let topo = cube(2);
        let tfg = generators::chain(2, 10, 10);
        let timing = Timing::new(1.0, 1.0);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1)], &tfg, &topo).unwrap();
        let err = WormholeSim::new(&topo, &tfg, &alloc, &timing)
            .unwrap()
            .with_virtual_channels(0)
            .unwrap_err();
        assert_eq!(err, SimError::InvalidVirtualChannels);
    }

    /// A directed hold-and-wait cycle around the ring's wraparound: two
    /// long clockwise messages interlock once a blocker staggers their
    /// channel captures. One virtual channel deadlocks; two multiplex
    /// through (Dally's classic result, and the paper's §6 remark).
    #[test]
    fn virtual_channels_break_cyclic_deadlock() {
        let topo = sr_topology::Torus::new(&[4]).unwrap(); // ring 0-1-2-3
        let mut b = TfgBuilder::new();
        let w_s = b.task("w_s", 0); // blocker fires instantly
        let w_d = b.task("w_d", 1000);
        let b_s = b.task("b_s", 500); // injects at 5 µs
        let b_d = b.task("b_d", 1000);
        let a_s = b.task("a_s", 1000); // injects at 10 µs
        let a_d = b.task("a_d", 1000);
        b.message("W", w_s, w_d, 1280).unwrap(); // 20 µs on channel 2->3
        b.message("B", b_s, b_d, 6400).unwrap(); // 100 µs, 2->3->0->1
        b.message("A", a_s, a_d, 6400).unwrap(); // 100 µs, 0->1->2->3
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 100.0);
        let alloc = Allocation::new(
            vec![
                NodeId(2),
                NodeId(3), // W
                NodeId(2),
                NodeId(1), // B
                NodeId(0),
                NodeId(3), // A
            ],
            &tfg,
            &topo,
        )
        .unwrap();
        // Deliberately non-minimal clockwise routes create the cycle:
        // A holds 0->1, 1->2 and waits for 2->3; B (granted 2->3 after the
        // blocker) holds 2->3, 3->0 and waits for 0->1.
        let routes = [
            Path::new(vec![NodeId(2), NodeId(3)]),
            Path::new(vec![NodeId(2), NodeId(3), NodeId(0), NodeId(1)]),
            Path::new(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]),
        ];
        let cfg = SimConfig {
            invocations: 3,
            warmup: 0,
        };

        let base = WormholeSim::new(&topo, &tfg, &alloc, &timing)
            .unwrap()
            .with_routes(&routes)
            .unwrap();
        let res = base.run(5000.0, &cfg).unwrap();
        assert!(res.deadlocked(), "expected directed hold-and-wait deadlock");
        // The post-mortem names the two interlocked messages (A and B) in a
        // genuine cycle: every participant is waiting.
        let cycle = res.deadlock_cycle();
        assert!(cycle.len() >= 2, "cycle: {cycle:?}");
        assert!(cycle.iter().all(|e| e.waiting_for.is_some()), "{cycle:?}");
        // Messages: W = 0, B = 1, A = 2; the interlocked pair is A and B.
        let names: std::collections::HashSet<usize> =
            cycle.iter().map(|e| e.message.index()).collect();
        assert!(names.contains(&1) && names.contains(&2), "{cycle:?}");

        let vc = WormholeSim::new(&topo, &tfg, &alloc, &timing)
            .unwrap()
            .with_routes(&routes)
            .unwrap()
            .with_virtual_channels(2)
            .unwrap();
        assert_eq!(vc.virtual_channels(), 2);
        let res = vc.run(5000.0, &cfg).unwrap();
        assert!(!res.deadlocked(), "two VCs must break the cycle");
    }

    /// With ample capacity and no contention, virtual channels only slow
    /// messages down (the halved-bandwidth cost without the blocking win).
    #[test]
    fn virtual_channels_halve_bandwidth() {
        let topo = cube(3);
        let tfg = generators::chain(2, 1000, 6400); // tx 100 at B=64
        let timing = Timing::new(64.0, 100.0);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1)], &tfg, &topo).unwrap();
        let cfg = SimConfig {
            invocations: 8,
            warmup: 2,
        };
        let lat1 = WormholeSim::new(&topo, &tfg, &alloc, &timing)
            .unwrap()
            .run(500.0, &cfg)
            .unwrap()
            .latency_stats()
            .mean;
        let lat2 = WormholeSim::new(&topo, &tfg, &alloc, &timing)
            .unwrap()
            .with_virtual_channels(2)
            .unwrap()
            .run(500.0, &cfg)
            .unwrap()
            .latency_stats()
            .mean;
        // 10 + 100 + 10 = 120 vs 10 + 200 + 10 = 220.
        assert!((lat1 - 120.0).abs() < 1e-6);
        assert!((lat2 - 220.0).abs() < 1e-6);
    }

    /// §3's adaptive scenario: M1 blocks the entry channel of M2's
    /// dimension-order path, adaptive routing commits M2 to the equivalent
    /// path — which shares a channel with M3. The commitment is still
    /// deadline-oblivious, so output inconsistency persists.
    #[test]
    fn adaptive_routing_does_not_cure_inconsistency() {
        let topo = cube(3);
        let mut b = TfgBuilder::new();
        // S emits both M1 (to A) and M2 (to D2); D2 feeds T3s, which emits
        // M3 — the paper's three-message construction.
        let s_task = b.task("S", 1000); // 10 µs
        let a = b.task("A", 1000);
        let d2 = b.task("D2", 1000);
        let t3s = b.task("T3s", 1000);
        let t3d = b.task("T3d", 1000);
        b.message("M1", s_task, a, 6400).unwrap(); // 100 µs, N1->N0
        b.message("M2", s_task, d2, 6400).unwrap(); // 100 µs, N1->N2
        b.message("c", d2, t3s, 64).unwrap(); // 1 µs coupling, N2->N3
        b.message("M3", t3s, t3d, 6400).unwrap(); // 100 µs, N3->N2
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 100.0);
        // S@N1, A@N0 (M1 on channel 1->0); D2@N2: M2's two shortest paths
        // are N1->N0->N2 (entry blocked by M1) and N1->N3->N2; T3s@N3,
        // T3d@N2: M3 on channel 3->2 — shared with M2's committed path.
        let alloc = Allocation::new(
            vec![NodeId(1), NodeId(0), NodeId(2), NodeId(3), NodeId(2)],
            &tfg,
            &topo,
        )
        .unwrap();
        let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing)
            .unwrap()
            .with_adaptive_routing(4)
            .unwrap();
        let res = sim
            .run(
                130.0,
                &SimConfig {
                    invocations: 40,
                    warmup: 6,
                },
            )
            .unwrap();
        assert!(!res.deadlocked());
        assert!(
            res.has_output_inconsistency(1e-6),
            "adaptive routing should still be inconsistent: {:?}",
            res.interval_stats()
        );
    }

    /// When the entry channel is visibly busy *at injection*, the adaptive
    /// policy reroutes and avoids the wait that deterministic routing eats.
    #[test]
    fn adaptive_routing_exploits_free_paths() {
        let topo = cube(3);
        let mut b = TfgBuilder::new();
        let s1 = b.task("s1", 0); // blocker source, fires at t=0
        let a = b.task("a", 1000);
        let s2 = b.task("s2", 1000); // injects M2 at t=10
        let d = b.task("d", 1000);
        b.message("M1", s1, a, 6400).unwrap(); // 100 µs on channel 0->1
        b.message("M2", s2, d, 640).unwrap(); // 10 µs, N0 -> N3
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 100.0);
        let alloc = Allocation::new(
            vec![NodeId(0), NodeId(1), NodeId(0), NodeId(3)],
            &tfg,
            &topo,
        )
        .unwrap();
        let cfg = SimConfig {
            invocations: 8,
            warmup: 2,
        };
        let run = |adaptive: bool| {
            let mut sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).unwrap();
            if adaptive {
                sim = sim.with_adaptive_routing(4).unwrap();
            }
            // Long period: invocations never overlap; the effect is purely
            // the injection-time reroute.
            sim.run(400.0, &cfg).unwrap()
        };
        let det = run(false);
        let ada = run(true);
        // M2 is message id 1; under dimension-order it waits ~90 µs for
        // channel 0->1, under adaptive it departs immediately via N2.
        let det_blocked = det.trace().blocked_series(sr_tfg::MessageId(1));
        let ada_blocked = ada.trace().blocked_series(sr_tfg::MessageId(1));
        assert!(det_blocked.iter().all(|&b| b > 80.0), "{det_blocked:?}");
        assert!(ada_blocked.iter().all(|&b| b < 1.0), "{ada_blocked:?}");
        // Both remain consistent (no cross-invocation overlap at τ_in=400).
        assert!(!det.has_output_inconsistency(1e-6));
        assert!(!ada.has_output_inconsistency(1e-6));
    }

    #[test]
    fn adaptive_zero_cap_rejected() {
        let topo = cube(2);
        let tfg = generators::chain(2, 10, 10);
        let timing = Timing::new(1.0, 1.0);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1)], &tfg, &topo).unwrap();
        let err = WormholeSim::new(&topo, &tfg, &alloc, &timing)
            .unwrap()
            .with_adaptive_routing(0)
            .unwrap_err();
        assert_eq!(err, SimError::InvalidPathCap);
    }

    /// The trace exposes the §3 mechanism directly: in the claim scenario,
    /// the big message's blocked time varies from invocation to invocation.
    #[test]
    fn trace_shows_varying_blocked_time() {
        let topo = cube(3);
        let tfg = generators::claim_chain(1000, 6400, 64);
        let timing = Timing::new(64.0, 100.0);
        let alloc = Allocation::new(
            vec![NodeId(0), NodeId(1), NodeId(0), NodeId(3)],
            &tfg,
            &topo,
        )
        .unwrap();
        let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).unwrap();
        let res = sim
            .run(
                120.0,
                &SimConfig {
                    invocations: 30,
                    warmup: 4,
                },
            )
            .unwrap();
        assert!(res.has_output_inconsistency(1e-6));
        // M1 (message 0) contends with M2 (message 2) on channel 0->1: its
        // blocked series is non-constant.
        let blocked = res.trace().blocked_series(sr_tfg::MessageId(0));
        assert_eq!(blocked.len(), 30);
        let spread = blocked.iter().cloned().fold(f64::MIN, f64::max)
            - blocked.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 1.0, "blocked series {blocked:?}");
        // Every flight's accounting is sane.
        for f in res.trace().flights() {
            assert!(f.blocked() >= -1e-9);
            assert!(f.residence() >= f.blocked() - 1e-9);
        }
        assert!(res.trace().max_blocked() >= spread);
    }

    /// The event stream narrates every transition, balances acquires with
    /// releases, and is bit-identical across runs; the default `run` stays
    /// on the no-op path with unchanged results.
    #[test]
    fn event_stream_narrates_the_run() {
        use sr_obs::SimEventKind as K;
        let topo = cube(3);
        let tfg = generators::chain(3, 1000, 640);
        let timing = Timing::new(64.0, 100.0);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1), NodeId(3)], &tfg, &topo).unwrap();
        let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).unwrap();
        let cfg = SimConfig {
            invocations: 5,
            warmup: 0,
        };
        let sink = sr_obs::RingEventSink::with_capacity(4096);
        let res = sim.run_with_events(20.0, &cfg, &sink).unwrap();
        assert!(!res.deadlocked());
        let events = sink.events();
        assert_eq!(sink.dropped(), 0);
        let count = |k: K| events.iter().filter(|e| e.kind == k).count();
        // 2 one-hop messages × 5 invocations, uncontended.
        assert_eq!(count(K::MessageInjected), 10);
        assert_eq!(count(K::FlitDelivered), 10);
        assert_eq!(count(K::HeaderBlocked), 0);
        assert_eq!(count(K::LinkAcquired), 10);
        assert_eq!(count(K::LinkAcquired), count(K::LinkReleased));
        assert_eq!(count(K::OutputProduced), 5);
        // Timestamps are monotone (the engine emits in event order).
        assert!(events.windows(2).all(|w| w[1].time_us >= w[0].time_us));
        // Deterministic: a second instrumented run yields the same stream.
        let sink2 = sr_obs::RingEventSink::with_capacity(4096);
        sim.run_with_events(20.0, &cfg, &sink2).unwrap();
        assert_eq!(events, sink2.events());
        // The uninstrumented entry point is unchanged.
        let plain = sim.run(20.0, &cfg).unwrap();
        assert_eq!(plain.records(), res.records());
    }

    /// Simulation is fully deterministic: identical runs give identical
    /// records and traces.
    #[test]
    fn simulation_is_deterministic() {
        let topo = cube(4);
        let tfg = sr_tfg::dvb_uniform(6);
        let timing = Timing::calibrated_dvb(64.0);
        let alloc = sr_mapping::random_distinct(&tfg, &topo, 3).unwrap();
        let cfg = SimConfig {
            invocations: 25,
            warmup: 5,
        };
        let run = || {
            WormholeSim::new(&topo, &tfg, &alloc, &timing)
                .unwrap()
                .run(55.0, &cfg)
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.records(), b.records());
        assert_eq!(a.trace().flights(), b.trace().flights());
        assert_eq!(a.deadlocked(), b.deadlocked());
    }

    #[test]
    fn torus_wraparound_traffic_runs() {
        let topo = Torus::new(&[4, 4]).unwrap();
        let tfg = sr_tfg::dvb_uniform(4);
        let timing = Timing::calibrated_dvb(64.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).unwrap();
        let res = sim.run(100.0, &SimConfig::default()).unwrap();
        assert!(!res.records().is_empty());
    }

    #[test]
    fn fan_in_over_shared_links_still_delivers_everything() {
        let topo = cube(4);
        let tfg = generators::diamond(6, 500, 3200);
        let timing = Timing::new(64.0, 100.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).unwrap();
        let res = sim
            .run(
                200.0,
                &SimConfig {
                    invocations: 20,
                    warmup: 4,
                },
            )
            .unwrap();
        assert!(!res.deadlocked());
        assert_eq!(res.records().len(), 20);
    }

    /// Building a TFG whose allocation makes one message dominate: check the
    /// latency matches hand analysis (path setup is free, tx dominates).
    #[test]
    fn latency_is_distance_insensitive() {
        let timing = Timing::new(64.0, 100.0);
        let topo = cube(4);
        let mut b = TfgBuilder::new();
        let a = b.task("a", 1000);
        let z = b.task("z", 1000);
        b.message("long", a, z, 6400).unwrap(); // 100 µs
        let tfg = b.build().unwrap();
        // 4 hops apart vs 1 hop apart: same latency under the paper's model.
        let far = Allocation::new(vec![NodeId(0), NodeId(15)], &tfg, &topo).unwrap();
        let near = Allocation::new(vec![NodeId(0), NodeId(1)], &tfg, &topo).unwrap();
        let cfg = SimConfig {
            invocations: 10,
            warmup: 2,
        };
        let lat_far = WormholeSim::new(&topo, &tfg, &far, &timing)
            .unwrap()
            .run(200.0, &cfg)
            .unwrap()
            .latency_stats()
            .mean;
        let lat_near = WormholeSim::new(&topo, &tfg, &near, &timing)
            .unwrap()
            .run(200.0, &cfg)
            .unwrap()
            .latency_stats()
            .mean;
        assert!((lat_far - lat_near).abs() < 1e-6);
        assert!((lat_far - 120.0).abs() < 1e-6); // 10 + 100 + 10
    }

    /// Wormhole routing over a [`MaskedTopology`]: the simulator obliviously
    /// re-routes around the dead link (its dimension-order route changes),
    /// and the longer detour shows up as added latency.
    #[test]
    fn masked_topology_reroutes_around_failed_link() {
        use sr_topology::{FaultSet, MaskedTopology};
        let topo = cube(3);
        let tfg = generators::chain(2, 1000, 640);
        let timing = Timing::new(64.0, 100.0); // exec 10, tx 10
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1)], &tfg, &topo).unwrap();
        let cfg = SimConfig {
            invocations: 10,
            warmup: 2,
        };
        let healthy = WormholeSim::new(&topo, &tfg, &alloc, &timing)
            .unwrap()
            .run(100.0, &cfg)
            .unwrap();

        let dead = topo.link_between(NodeId(0), NodeId(1)).unwrap();
        let masked = MaskedTopology::new(&topo, FaultSet::new().fail_link(dead));
        let degraded = WormholeSim::new(&masked, &tfg, &alloc, &timing)
            .unwrap()
            .run(100.0, &cfg)
            .unwrap();

        assert!(!degraded.deadlocked());
        assert!(!degraded.has_output_inconsistency(1e-6));
        // The paper's latency model is hop-count independent, so throughput
        // and latency match the healthy run ...
        assert!(
            (degraded.latency_stats().mean - healthy.latency_stats().mean).abs() < 1e-6,
            "healthy {:?} vs degraded {:?}",
            healthy.latency_stats(),
            degraded.latency_stats()
        );
        // ... but the route the simulator derived really is the detour: the
        // masked dimension-order path avoids the dead link and takes 3 hops.
        let detour = masked.dimension_order_path(NodeId(0), NodeId(1));
        assert_eq!(detour.hops(), 3);
        assert!(!detour.links(&masked).contains(&dead));
    }
}
