//! A discrete-event simulator for **wormhole routing** under task-level
//! pipelining.
//!
//! This is the paper's baseline (ISCA '91, §3 and §6): second-generation
//! multicomputers route messages over a deterministic dimension-order path,
//! resolve link contention **first-come-first-served in hardware**, and are
//! oblivious to the application's timing requirements. When a task-flow
//! graph is invoked periodically, messages of *different invocations*
//! coexist in the network; the FCFS policy then delays messages of the
//! current invocation behind less-urgent ones, and the interval between
//! successive pipeline outputs stops being constant — **output
//! inconsistency** (OI).
//!
//! The channel model follows the paper's:
//!
//! * one half-duplex link per adjacent node pair, captured by at most one
//!   message at a time;
//! * a message acquires its path's links hop by hop, holds every acquired
//!   link while blocked, and holds *all* of them until it is completely
//!   received (transmission time dominates propagation after path setup);
//! * co-located sender/receiver exchange messages without the network.
//!
//! Each node's application processor executes ready task instances one at a
//! time, earliest invocation first.
//!
//! # Examples
//!
//! ```
//! use sr_wormhole::{SimConfig, WormholeSim};
//! use sr_topology::GeneralizedHypercube;
//! use sr_tfg::{Timing, dvb_uniform};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cube = GeneralizedHypercube::binary(6)?;
//! let tfg = dvb_uniform(8);
//! let alloc = sr_mapping::greedy(&tfg, &cube);
//! let timing = Timing::calibrated_dvb(64.0);
//!
//! let sim = WormholeSim::new(&cube, &tfg, &alloc, &timing)?;
//! let result = sim.run(75.0, &SimConfig::default())?;
//! println!("output-interval spread: {:?}", result.interval_stats());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod result;
mod sim;
mod trace;

pub use result::{DeadlockEdge, InvocationRecord, SimResult, Stats};
pub use sim::{SimConfig, SimError, WormholeSim};
pub use trace::{BlockedSummary, FlightRecord, Trace};
