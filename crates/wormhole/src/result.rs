/// Summary statistics of a per-invocation series.
///
/// The paper plots output inconsistency as an "up-down spike": the maximum,
/// minimum, and middle (average) of the observed values across invocations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Smallest observed value.
    pub min: f64,
    /// Arithmetic mean of the observed values.
    pub mean: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Stats {
    /// Computes statistics over a slice.
    ///
    /// Returns `None` for an empty slice.
    pub fn from_slice(values: &[f64]) -> Option<Stats> {
        if values.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Some(Stats {
            min,
            mean: sum / values.len() as f64,
            max,
        })
    }

    /// The spread `max − min`.
    pub fn spread(&self) -> f64 {
        self.max - self.min
    }
}

/// Timing record of one completed TFG invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationRecord {
    /// Invocation index (0-based).
    pub index: usize,
    /// Arrival time of this invocation's input, in µs.
    pub input_time: f64,
    /// Completion time of the last output task, in µs.
    pub output_time: f64,
}

impl InvocationRecord {
    /// Latency `λ_j = t_out − t_in` of this invocation, in µs.
    pub fn latency(&self) -> f64 {
        self.output_time - self.input_time
    }
}

/// One participant in a deadlock's hold-and-wait chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlockEdge {
    /// The blocked (or holding) message.
    pub message: sr_tfg::MessageId,
    /// Its invocation.
    pub invocation: usize,
    /// The channel it waits for as `(link, reverse-direction?)`, or `None`
    /// for a flight that holds resources without waiting.
    pub waiting_for: Option<(sr_topology::LinkId, bool)>,
}

/// The outcome of a wormhole-routing simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    pub(crate) period: f64,
    pub(crate) records: Vec<InvocationRecord>,
    pub(crate) warmup: usize,
    pub(crate) deadlocked: bool,
    pub(crate) link_busy: Vec<f64>,
    pub(crate) makespan: f64,
    pub(crate) trace: crate::trace::Trace,
    pub(crate) deadlock_cycle: Vec<DeadlockEdge>,
}

impl SimResult {
    /// The input arrival period `τ_in` the run used, in µs.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// All completed invocations, in order.
    pub fn records(&self) -> &[InvocationRecord] {
        &self.records
    }

    /// `true` if the network deadlocked before all invocations completed.
    ///
    /// Hold-while-blocked link capture can deadlock (notably on tori, whose
    /// wraparound rings make dimension-order routing cyclic without virtual
    /// channels); the run then ends early with the completed prefix.
    pub fn deadlocked(&self) -> bool {
        self.deadlocked
    }

    /// Post-warmup output generation intervals `δ_j = t_out(j) − t_out(j−1)`.
    pub fn output_intervals(&self) -> Vec<f64> {
        self.records
            .windows(2)
            .skip(self.warmup.saturating_sub(1))
            .map(|w| w[1].output_time - w[0].output_time)
            .collect()
    }

    /// Post-warmup invocation latencies.
    pub fn latencies(&self) -> Vec<f64> {
        self.records
            .iter()
            .skip(self.warmup)
            .map(InvocationRecord::latency)
            .collect()
    }

    /// Min/mean/max of the post-warmup output intervals.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two post-warmup invocations completed.
    pub fn interval_stats(&self) -> Stats {
        Stats::from_slice(&self.output_intervals())
            .expect("need at least two completed invocations after warmup")
    }

    /// Min/mean/max of the post-warmup latencies.
    ///
    /// # Panics
    ///
    /// Panics if no post-warmup invocation completed.
    pub fn latency_stats(&self) -> Stats {
        Stats::from_slice(&self.latencies())
            .expect("need at least one completed invocation after warmup")
    }

    /// Total simulated time, µs (the instant the last event fired).
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// The message-level trace: injection, path capture, and delivery of
    /// every completed flight.
    pub fn trace(&self) -> &crate::trace::Trace {
        &self.trace
    }

    /// On deadlock, the hold-and-wait chain the post-mortem extracted (a
    /// cycle when one exists through the first blocked flight); empty for
    /// clean runs.
    pub fn deadlock_cycle(&self) -> &[DeadlockEdge] {
        &self.deadlock_cycle
    }

    /// Measured occupancy of a link: the fraction of the whole run during
    /// which some message had one of the link's two directed channels
    /// captured (including time spent *blocked* while holding it — exactly
    /// the capture semantics whose cost scheduled routing eliminates).
    /// Reports the busier of the two directions.
    ///
    /// Returns 0 for links that never carried traffic and for zero-length
    /// runs.
    pub fn link_occupancy(&self, link: sr_topology::LinkId) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let a = self.link_busy.get(link.index() * 2).copied().unwrap_or(0.0);
        let b = self
            .link_busy
            .get(link.index() * 2 + 1)
            .copied()
            .unwrap_or(0.0);
        a.max(b) / self.makespan
    }

    /// The highest [`SimResult::link_occupancy`] over all links.
    pub fn peak_link_occupancy(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.link_busy
            .iter()
            .fold(0.0f64, |acc, &b| acc.max(b / self.makespan))
    }

    /// Whether the run exhibits **output inconsistency**: some post-warmup
    /// output interval deviates from the input period by more than `tol` µs
    /// (Eq. (1) of the paper: pipelining succeeds iff every `δ_j = τ_in`).
    ///
    /// A deadlocked run counts as inconsistent.
    pub fn has_output_inconsistency(&self, tol: f64) -> bool {
        if self.deadlocked {
            return true;
        }
        self.output_intervals()
            .iter()
            .any(|&d| (d - self.period).abs() > tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(index: usize, input: f64, output: f64) -> InvocationRecord {
        InvocationRecord {
            index,
            input_time: input,
            output_time: output,
        }
    }

    #[test]
    fn stats_from_slice() {
        let s = Stats::from_slice(&[1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.spread(), 2.0);
        assert!(Stats::from_slice(&[]).is_none());
    }

    #[test]
    fn consistent_run_reports_no_oi() {
        let r = SimResult {
            period: 10.0,
            records: (0..5)
                .map(|j| rec(j, j as f64 * 10.0, 100.0 + j as f64 * 10.0))
                .collect(),
            warmup: 1,
            deadlocked: false,
            link_busy: vec![25.0, 0.0],
            makespan: 140.0,
            trace: Default::default(),
            deadlock_cycle: Vec::new(),
        };
        assert!(!r.has_output_inconsistency(1e-9));
        assert_eq!(r.interval_stats().spread(), 0.0);
        assert_eq!(r.latency_stats().mean, 100.0);
    }

    #[test]
    fn alternating_outputs_report_oi() {
        // Output intervals alternate 8, 12, 8, 12 around a period of 10.
        let outputs = [100.0, 108.0, 120.0, 128.0, 140.0];
        let r = SimResult {
            period: 10.0,
            records: outputs
                .iter()
                .enumerate()
                .map(|(j, &o)| rec(j, j as f64 * 10.0, o))
                .collect(),
            warmup: 0,
            deadlocked: false,
            link_busy: Vec::new(),
            makespan: 140.0,
            trace: Default::default(),
            deadlock_cycle: Vec::new(),
        };
        assert!(r.has_output_inconsistency(1e-9));
        let s = r.interval_stats();
        assert_eq!(s.min, 8.0);
        assert_eq!(s.max, 12.0);
    }

    #[test]
    fn warmup_skips_initial_records() {
        let r = SimResult {
            period: 10.0,
            // First interval is bogus (35), the rest are exactly 10.
            records: vec![
                rec(0, 0.0, 50.0),
                rec(1, 10.0, 85.0),
                rec(2, 20.0, 95.0),
                rec(3, 30.0, 105.0),
            ],
            warmup: 2,
            deadlocked: false,
            link_busy: Vec::new(),
            makespan: 105.0,
            trace: Default::default(),
            deadlock_cycle: Vec::new(),
        };
        assert_eq!(r.output_intervals(), vec![10.0, 10.0]);
        assert!(!r.has_output_inconsistency(1e-9));
        assert_eq!(r.latencies().len(), 2);
    }

    #[test]
    fn occupancy_accounting() {
        let r = SimResult {
            period: 10.0,
            records: vec![rec(0, 0.0, 50.0), rec(1, 10.0, 60.0)],
            warmup: 0,
            deadlocked: false,
            // Channels: link 0 has 30 µs (+dir) and 12 µs (−dir); link 1 idle.
            link_busy: vec![30.0, 12.0, 0.0, 0.0],
            makespan: 60.0,
            trace: Default::default(),
            deadlock_cycle: Vec::new(),
        };
        assert!((r.link_occupancy(sr_topology::LinkId(0)) - 0.5).abs() < 1e-12);
        assert_eq!(r.link_occupancy(sr_topology::LinkId(1)), 0.0);
        assert_eq!(r.link_occupancy(sr_topology::LinkId(9)), 0.0); // out of range
        assert!((r.peak_link_occupancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deadlock_is_inconsistent() {
        let r = SimResult {
            period: 10.0,
            records: vec![],
            warmup: 0,
            deadlocked: true,
            link_busy: Vec::new(),
            makespan: 0.0,
            trace: Default::default(),
            deadlock_cycle: Vec::new(),
        };
        assert!(r.has_output_inconsistency(1e-9));
    }
}
