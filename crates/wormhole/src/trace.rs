//! Message-level tracing for wormhole simulation runs.
//!
//! A [`Trace`] records, for every message instance (message × invocation),
//! when it was injected, how long it stalled acquiring its path, and when
//! it was delivered. This is the evidence behind the paper's §3 argument:
//! under FCFS flow control the *blocked time* of a message varies from
//! invocation to invocation, and those variations surface as output
//! inconsistency.

use sr_tfg::MessageId;

/// The lifecycle of one message instance through the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightRecord {
    /// Which message.
    pub message: MessageId,
    /// Which invocation's instance.
    pub invocation: usize,
    /// When the source task completed and the message entered the network,
    /// µs.
    pub injected_at: f64,
    /// When the last channel of the path was captured (equals
    /// `injected_at` for an unobstructed path or a local message), µs.
    pub path_complete_at: f64,
    /// When the message was fully received, µs.
    pub delivered_at: f64,
}

impl FlightRecord {
    /// Time spent blocked waiting for channels, µs.
    pub fn blocked(&self) -> f64 {
        self.path_complete_at - self.injected_at
    }

    /// Total network residence time, µs.
    pub fn residence(&self) -> f64 {
        self.delivered_at - self.injected_at
    }
}

/// All flight records of a traced simulation run, in injection order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub(crate) flights: Vec<FlightRecord>,
}

impl Trace {
    /// Every flight, in injection order.
    pub fn flights(&self) -> &[FlightRecord] {
        &self.flights
    }

    /// Flights of one message across invocations, in invocation order.
    pub fn of_message(&self, message: MessageId) -> Vec<FlightRecord> {
        let mut v: Vec<FlightRecord> = self
            .flights
            .iter()
            .copied()
            .filter(|f| f.message == message)
            .collect();
        v.sort_by_key(|f| f.invocation);
        v
    }

    /// The per-invocation blocked times of one message — the quantity whose
    /// invocation-to-invocation variation causes output inconsistency.
    pub fn blocked_series(&self, message: MessageId) -> Vec<f64> {
        self.of_message(message)
            .iter()
            .map(FlightRecord::blocked)
            .collect()
    }

    /// Longest blocked time observed across all flights (0 for an empty
    /// trace).
    pub fn max_blocked(&self) -> f64 {
        self.flights
            .iter()
            .map(FlightRecord::blocked)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(message: usize, invocation: usize, inj: f64, cap: f64, del: f64) -> FlightRecord {
        FlightRecord {
            message: MessageId(message),
            invocation,
            injected_at: inj,
            path_complete_at: cap,
            delivered_at: del,
        }
    }

    #[test]
    fn record_arithmetic() {
        let r = f(0, 0, 10.0, 15.0, 115.0);
        assert_eq!(r.blocked(), 5.0);
        assert_eq!(r.residence(), 105.0);
    }

    #[test]
    fn per_message_series_sorted_by_invocation() {
        let t = Trace {
            flights: vec![
                f(0, 1, 20.0, 25.0, 30.0),
                f(1, 0, 0.0, 0.0, 5.0),
                f(0, 0, 10.0, 10.0, 15.0),
            ],
        };
        let s = t.blocked_series(MessageId(0));
        assert_eq!(s, vec![0.0, 5.0]);
        assert_eq!(t.of_message(MessageId(1)).len(), 1);
        assert_eq!(t.max_blocked(), 5.0);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.flights().is_empty());
        assert_eq!(t.max_blocked(), 0.0);
    }
}
