//! Message-level tracing for wormhole simulation runs.
//!
//! A [`Trace`] records, for every message instance (message × invocation),
//! when it was injected, how long it stalled acquiring its path, and when
//! it was delivered. This is the evidence behind the paper's §3 argument:
//! under FCFS flow control the *blocked time* of a message varies from
//! invocation to invocation, and those variations surface as output
//! inconsistency.

use sr_tfg::MessageId;

/// The lifecycle of one message instance through the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightRecord {
    /// Which message.
    pub message: MessageId,
    /// Which invocation's instance.
    pub invocation: usize,
    /// When the source task completed and the message entered the network,
    /// µs.
    pub injected_at: f64,
    /// When the last channel of the path was captured (equals
    /// `injected_at` for an unobstructed path or a local message), µs.
    pub path_complete_at: f64,
    /// When the message was fully received, µs.
    pub delivered_at: f64,
}

impl FlightRecord {
    /// Time spent blocked waiting for channels, µs.
    pub fn blocked(&self) -> f64 {
        self.path_complete_at - self.injected_at
    }

    /// Total network residence time, µs.
    pub fn residence(&self) -> f64 {
        self.delivered_at - self.injected_at
    }
}

/// All flight records of a traced simulation run, in injection order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub(crate) flights: Vec<FlightRecord>,
}

impl Trace {
    /// Every flight, in injection order.
    pub fn flights(&self) -> &[FlightRecord] {
        &self.flights
    }

    /// Flights of one message across invocations, in invocation order.
    pub fn of_message(&self, message: MessageId) -> Vec<FlightRecord> {
        let mut v: Vec<FlightRecord> = self
            .flights
            .iter()
            .copied()
            .filter(|f| f.message == message)
            .collect();
        v.sort_by_key(|f| f.invocation);
        v
    }

    /// The per-invocation blocked times of one message — the quantity whose
    /// invocation-to-invocation variation causes output inconsistency.
    pub fn blocked_series(&self, message: MessageId) -> Vec<f64> {
        self.of_message(message)
            .iter()
            .map(FlightRecord::blocked)
            .collect()
    }

    /// Longest blocked time observed across all flights (0 for an empty
    /// trace).
    pub fn max_blocked(&self) -> f64 {
        self.flights
            .iter()
            .map(FlightRecord::blocked)
            .fold(0.0, f64::max)
    }

    /// Distribution of blocked times across all flights, or `None` for an
    /// empty trace. The spread between `p50` and `max` is the paper's §3
    /// inconsistency evidence in one line.
    pub fn blocked_summary(&self) -> Option<BlockedSummary> {
        BlockedSummary::of(self.flights.iter().map(FlightRecord::blocked))
    }

    /// Distribution of network residence times across all flights, or
    /// `None` for an empty trace.
    pub fn residence_summary(&self) -> Option<BlockedSummary> {
        BlockedSummary::of(self.flights.iter().map(FlightRecord::residence))
    }
}

/// Order statistics of a set of per-flight durations (µs): blocked times or
/// residence times. Percentiles use the nearest-rank definition, so every
/// reported value is one actually observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockedSummary {
    /// Number of flights summarized.
    pub count: usize,
    /// Arithmetic mean, µs.
    pub mean: f64,
    /// Median (nearest-rank), µs.
    pub p50: f64,
    /// 95th percentile (nearest-rank), µs.
    pub p95: f64,
    /// Maximum, µs.
    pub max: f64,
}

impl BlockedSummary {
    /// Summarizes a sequence of durations; `None` when empty (or when every
    /// value is NaN — NaN samples are dropped, since they would sort above
    /// `+inf` under [`f64::total_cmp`] and poison `max`/`mean`).
    pub fn of(values: impl IntoIterator<Item = f64>) -> Option<BlockedSummary> {
        let mut v: Vec<f64> = values.into_iter().filter(|x| !x.is_nan()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(f64::total_cmp);
        let nearest = |q: f64| {
            let rank = (q * v.len() as f64).ceil() as usize;
            v[rank.clamp(1, v.len()) - 1]
        };
        Some(BlockedSummary {
            count: v.len(),
            mean: v.iter().sum::<f64>() / v.len() as f64,
            p50: nearest(0.5),
            p95: nearest(0.95),
            max: v[v.len() - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(message: usize, invocation: usize, inj: f64, cap: f64, del: f64) -> FlightRecord {
        FlightRecord {
            message: MessageId(message),
            invocation,
            injected_at: inj,
            path_complete_at: cap,
            delivered_at: del,
        }
    }

    #[test]
    fn record_arithmetic() {
        let r = f(0, 0, 10.0, 15.0, 115.0);
        assert_eq!(r.blocked(), 5.0);
        assert_eq!(r.residence(), 105.0);
    }

    #[test]
    fn per_message_series_sorted_by_invocation() {
        let t = Trace {
            flights: vec![
                f(0, 1, 20.0, 25.0, 30.0),
                f(1, 0, 0.0, 0.0, 5.0),
                f(0, 0, 10.0, 10.0, 15.0),
            ],
        };
        let s = t.blocked_series(MessageId(0));
        assert_eq!(s, vec![0.0, 5.0]);
        assert_eq!(t.of_message(MessageId(1)).len(), 1);
        assert_eq!(t.max_blocked(), 5.0);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.flights().is_empty());
        assert_eq!(t.max_blocked(), 0.0);
        assert!(t.blocked_summary().is_none());
        assert!(t.residence_summary().is_none());
    }

    #[test]
    fn blocked_summary_order_statistics() {
        // Blocked times 0..=19 µs across 20 flights.
        let t = Trace {
            flights: (0..20).map(|i| f(i, 0, 0.0, i as f64, 100.0)).collect(),
        };
        let s = t.blocked_summary().unwrap();
        assert_eq!(s.count, 20);
        assert_eq!(s.mean, 9.5);
        assert_eq!(s.p50, 9.0); // nearest-rank: 10th of 20
        assert_eq!(s.p95, 18.0); // 19th of 20
        assert_eq!(s.max, 19.0);
        // Residence = delivered - injected = 100 for every flight.
        let r = t.residence_summary().unwrap();
        assert_eq!((r.p50, r.p95, r.max), (100.0, 100.0, 100.0));
    }

    #[test]
    fn single_flight_summary_is_degenerate() {
        let s = BlockedSummary::of([3.0]).unwrap();
        assert_eq!(
            (s.count, s.mean, s.p50, s.p95, s.max),
            (1, 3.0, 3.0, 3.0, 3.0)
        );
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(BlockedSummary::of([]).is_none());
    }

    #[test]
    fn summary_filters_nan() {
        let s = BlockedSummary::of([2.0, f64::NAN, 4.0]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 3.0);
        assert!(!s.p95.is_nan());
        // All-NaN behaves like empty.
        assert!(BlockedSummary::of([f64::NAN, f64::NAN]).is_none());
    }
}
