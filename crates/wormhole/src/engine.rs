//! The discrete-event core of the wormhole simulator.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::result::{InvocationRecord, SimResult};
use crate::trace::{FlightRecord, Trace};
use sr_mapping::Allocation;
use sr_obs::{EventSink, SimEvent, SimEventKind, NO_ID};
use sr_tfg::{MessageId, TaskFlowGraph, TaskId, Timing};

/// A scheduled simulation event; `seq` makes ordering total and FCFS
/// tie-breaks deterministic.
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

enum EventKind {
    /// External input `j` arrives, releasing every input task's instance `j`.
    Input(usize),
    /// A task instance finishes executing on its node.
    TaskDone { task: TaskId, inv: usize },
    /// A message instance finishes transmitting over its captured path.
    TxDone { flight: usize },
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// One in-flight message instance (message × invocation).
struct Flight {
    message: MessageId,
    inv: usize,
    /// Directed channels of the route, hop order.
    links: Vec<usize>,
    /// How many channels from the front are currently held.
    acquired: usize,
    tx_time: f64,
    injected_at: f64,
    path_complete_at: f64,
}

#[derive(Default)]
struct LinkState {
    /// Flights currently multiplexed onto the link (≤ capacity).
    holders: Vec<usize>,
    queue: VecDeque<usize>,
}

struct NodeState {
    busy: bool,
    /// Ready task instances: (invocation, topological position, task).
    ready: BinaryHeap<Reverse<(usize, usize, usize)>>,
}

pub(crate) struct Engine<'a> {
    tfg: &'a TaskFlowGraph,
    alloc: &'a Allocation,
    timing: &'a Timing,
    /// Candidate channel routes per message; deterministic routing has one
    /// candidate, adaptive routing several (committed at injection).
    routes: &'a [Vec<Vec<usize>>],
    period: f64,
    invocations: usize,
    /// Messages sharable per channel (1 = the paper's base model; 2 = the
    /// stricter virtual-channel model, with per-message bandwidth halved).
    link_capacity: usize,
    /// Transmission-time multiplier (= link_capacity: each message sees
    /// 1/capacity of the link bandwidth under multiplexing).
    tx_factor: f64,

    now: f64,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    links: Vec<LinkState>,
    flights: Vec<Flight>,
    nodes: Vec<NodeState>,
    /// `remaining[inv][task]`: predecessor arrivals still outstanding
    /// (input tasks wait for exactly one: the external input).
    remaining: Vec<Vec<usize>>,
    outputs_remaining: Vec<usize>,
    output_time: Vec<Option<f64>>,
    topo_pos: Vec<usize>,
    /// Per-link total captured time (for occupancy statistics).
    link_busy: Vec<f64>,
    /// Per-link capture timestamp of each current holder (parallel to
    /// `LinkState::holders`).
    hold_since: Vec<Vec<f64>>,
    end_time: f64,
    trace: Trace,
    /// Event-stream sink; every state transition narrates itself here when
    /// `events_on` (cached [`EventSink::enabled`]) is set.
    sink: &'a dyn EventSink,
    events_on: bool,
}

impl<'a> Engine<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        tfg: &'a TaskFlowGraph,
        alloc: &'a Allocation,
        timing: &'a Timing,
        routes: &'a [Vec<Vec<usize>>],
        num_links: usize,
        period: f64,
        invocations: usize,
        link_capacity: usize,
        sink: &'a dyn EventSink,
    ) -> Self {
        debug_assert!(link_capacity >= 1);
        let nt = tfg.num_tasks();
        let mut topo_pos = vec![0usize; nt];
        for (i, &t) in tfg.topological_order().iter().enumerate() {
            topo_pos[t.index()] = i;
        }
        let base_remaining: Vec<usize> = (0..nt)
            .map(|t| {
                let inc = tfg.incoming(TaskId(t)).len();
                if inc == 0 {
                    1 // released by the external input event
                } else {
                    inc
                }
            })
            .collect();
        let mut num_nodes = 0;
        for &n in alloc.placement() {
            num_nodes = num_nodes.max(n.index() + 1);
        }
        Engine {
            tfg,
            alloc,
            timing,
            routes,
            period,
            invocations,
            link_capacity,
            tx_factor: link_capacity as f64,
            now: 0.0,
            seq: 0,
            events: BinaryHeap::new(),
            links: (0..num_links).map(|_| LinkState::default()).collect(),
            flights: Vec::new(),
            nodes: (0..num_nodes)
                .map(|_| NodeState {
                    busy: false,
                    ready: BinaryHeap::new(),
                })
                .collect(),
            remaining: (0..invocations).map(|_| base_remaining.clone()).collect(),
            outputs_remaining: vec![tfg.outputs().len(); invocations],
            output_time: vec![None; invocations],
            topo_pos,
            link_busy: vec![0.0; num_links],
            hold_since: vec![Vec::new(); num_links],
            end_time: 0.0,
            trace: Trace::default(),
            sink,
            events_on: sink.enabled(),
        }
    }

    /// Records one event at the current simulated time; free when the sink
    /// is the no-op (`events_on` caches `enabled()`, so the disabled path
    /// is a single branch).
    fn emit(&self, kind: SimEventKind, message: u32, invocation: u32, channel: u32) {
        if self.events_on {
            self.sink.record(SimEvent {
                time_us: self.now,
                kind,
                message,
                invocation,
                channel,
            });
        }
    }

    fn push_event(&mut self, time: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { time, seq, kind }));
    }

    pub(crate) fn run(mut self, warmup: usize) -> SimResult {
        for j in 0..self.invocations {
            self.push_event(j as f64 * self.period, EventKind::Input(j));
        }
        while let Some(Reverse(ev)) = self.events.pop() {
            debug_assert!(ev.time >= self.now - 1e-9, "time went backwards");
            self.now = ev.time.max(self.now);
            match ev.kind {
                EventKind::Input(j) => {
                    for &t in self.tfg.inputs().to_vec().iter() {
                        self.predecessor_arrived(t, j);
                    }
                }
                EventKind::TaskDone { task, inv } => self.on_task_done(task, inv),
                EventKind::TxDone { flight } => self.on_tx_done(flight),
            }
        }
        // Collect the prefix of consecutively completed invocations; a gap
        // (only possible if the network deadlocked) truncates the series.
        let mut records = Vec::new();
        for (j, out) in self.output_time.iter().enumerate() {
            match out {
                Some(t) => records.push(InvocationRecord {
                    index: j,
                    input_time: j as f64 * self.period,
                    output_time: *t,
                }),
                None => break,
            }
        }
        let deadlocked = records.len() < self.invocations;
        // Post-mortem: on deadlock, snapshot the wait-for state and extract
        // one hold-and-wait cycle for the report.
        let deadlock_cycle = if deadlocked {
            self.extract_cycle()
        } else {
            Vec::new()
        };
        self.end_time = self.now;
        // Close out any links still captured (deadlocked flights).
        for l in 0..self.links.len() {
            for &since in &self.hold_since[l] {
                self.link_busy[l] += self.end_time - since;
            }
        }
        SimResult {
            period: self.period,
            records,
            warmup,
            deadlocked,
            link_busy: std::mem::take(&mut self.link_busy),
            makespan: self.end_time,
            trace: std::mem::take(&mut self.trace),
            deadlock_cycle,
        }
    }

    /// Walks the wait-for relation (blocked flight → flights holding the
    /// channel it waits for) from an arbitrary blocked flight until a
    /// flight repeats; returns the cycle as `(message, invocation, waited
    /// channel)` triples. Empty when no blocked flight exists.
    fn extract_cycle(&self) -> Vec<crate::result::DeadlockEdge> {
        // A flight is blocked iff it sits in some channel's queue.
        let mut waiting_for: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for (ch, link) in self.links.iter().enumerate() {
            for &f in &link.queue {
                waiting_for.insert(f, ch);
            }
        }
        let Some((&start, _)) = waiting_for.iter().min_by_key(|(f, _)| **f) else {
            return Vec::new();
        };
        let mut chain: Vec<usize> = Vec::new();
        let mut seen = std::collections::HashMap::new();
        let mut cur = start;
        loop {
            if let Some(&pos) = seen.get(&cur) {
                chain.drain(..pos);
                break;
            }
            seen.insert(cur, chain.len());
            chain.push(cur);
            let Some(&ch) = waiting_for.get(&cur) else {
                // The chain left the blocked set (a holder that is merely
                // transmitting): no cycle through this flight — report the
                // chain as-is.
                break;
            };
            // Follow to the lowest-id holder of the waited channel.
            let Some(&next) = self.links[ch].holders.iter().min() else {
                break;
            };
            cur = next;
        }
        chain
            .into_iter()
            .map(|f| {
                let fl = &self.flights[f];
                crate::result::DeadlockEdge {
                    message: fl.message,
                    invocation: fl.inv,
                    waiting_for: waiting_for
                        .get(&f)
                        .map(|&ch| (sr_topology::LinkId(ch / 2), ch % 2 == 1)),
                }
            })
            .collect()
    }

    /// One of `task`'s inputs for invocation `inv` became available.
    fn predecessor_arrived(&mut self, task: TaskId, inv: usize) {
        let r = &mut self.remaining[inv][task.index()];
        debug_assert!(*r > 0, "excess arrivals for {task} inv {inv}");
        *r -= 1;
        if *r == 0 {
            let node = self.alloc.node_of(task).index();
            self.nodes[node]
                .ready
                .push(Reverse((inv, self.topo_pos[task.index()], task.index())));
            self.start_next(node);
        }
    }

    /// Starts the highest-priority ready instance if the AP is idle.
    fn start_next(&mut self, node: usize) {
        if self.nodes[node].busy {
            return;
        }
        let Some(Reverse((inv, _, task))) = self.nodes[node].ready.pop() else {
            return;
        };
        self.nodes[node].busy = true;
        let exec = self.timing.exec_time(self.tfg.task(TaskId(task)));
        self.push_event(
            self.now + exec,
            EventKind::TaskDone {
                task: TaskId(task),
                inv,
            },
        );
    }

    fn on_task_done(&mut self, task: TaskId, inv: usize) {
        let node = self.alloc.node_of(task).index();
        self.nodes[node].busy = false;

        // Inject outgoing messages (message-id order => deterministic FCFS).
        for &m in self.tfg.outgoing(task).to_vec().iter() {
            self.inject(m, inv);
        }

        if self.tfg.outgoing(task).is_empty() {
            // Output task: this invocation completes when all outputs have.
            let rem = &mut self.outputs_remaining[inv];
            *rem -= 1;
            if *rem == 0 {
                self.output_time[inv] = Some(self.now);
                self.emit(SimEventKind::OutputProduced, NO_ID, inv as u32, NO_ID);
            }
        }

        self.start_next(node);
    }

    /// Creates the flight for message `m`, invocation `inv`, and pushes it
    /// into the network.
    fn inject(&mut self, m: MessageId, inv: usize) {
        let msg = self.tfg.message(m);
        let links = self.select_route(m);
        // Under virtual-channel multiplexing every message sees only
        // 1/capacity of the raw link bandwidth (paper §6, last paragraph).
        let tx_time = self.timing.tx_time(msg) * self.tx_factor;
        let id = self.flights.len();
        self.flights.push(Flight {
            message: m,
            inv,
            links,
            acquired: 0,
            tx_time,
            injected_at: self.now,
            path_complete_at: self.now,
        });
        self.emit(
            SimEventKind::MessageInjected,
            m.index() as u32,
            inv as u32,
            NO_ID,
        );
        if self.flights[id].links.is_empty() {
            // Co-located sender and receiver: no network involvement.
            self.push_event(self.now, EventKind::TxDone { flight: id });
        } else {
            self.advance(id);
        }
    }

    /// Commits a route for a fresh flight: with one candidate this is the
    /// deterministic routing function; with several it is the §3 adaptive
    /// policy — take the first candidate whose first channel has a free
    /// slot, else the one with the shortest queue on its first channel
    /// (first wins ties). The choice is final ("the adaptive flow-control
    /// commits it to a path").
    fn select_route(&self, m: MessageId) -> Vec<usize> {
        let candidates = &self.routes[m.index()];
        if candidates.len() == 1 || candidates[0].is_empty() {
            return candidates[0].clone();
        }
        let mut best: Option<(usize, usize)> = None; // (queue length, index)
        for (i, c) in candidates.iter().enumerate() {
            let first = c[0];
            let link = &self.links[first];
            if link.holders.len() < self.link_capacity {
                return c.clone();
            }
            let q = link.queue.len();
            if best.is_none_or(|(bq, _)| q < bq) {
                best = Some((q, i));
            }
        }
        candidates[best.expect("at least one candidate").1].clone()
    }

    /// Acquires links for `flight` until it blocks or holds its whole path.
    ///
    /// Invariant: a link with an empty queue and no holder is free; a held
    /// link queues requesters FCFS.
    fn advance(&mut self, flight: usize) {
        let (fm, fi) = {
            let f = &self.flights[flight];
            (f.message.index() as u32, f.inv as u32)
        };
        loop {
            let next = {
                let f = &mut self.flights[flight];
                if f.acquired == f.links.len() {
                    f.path_complete_at = self.now;
                    let tx = f.tx_time;
                    self.push_event(self.now + tx, EventKind::TxDone { flight });
                    return;
                }
                f.links[f.acquired]
            };
            let link = &mut self.links[next];
            if link.holders.len() < self.link_capacity {
                debug_assert!(link.queue.is_empty(), "spare link slot with waiters");
                link.holders.push(flight);
                self.hold_since[next].push(self.now);
                self.flights[flight].acquired += 1;
                self.emit(SimEventKind::LinkAcquired, fm, fi, next as u32);
            } else {
                link.queue.push_back(flight);
                self.emit(SimEventKind::HeaderBlocked, fm, fi, next as u32);
                return;
            }
        }
    }

    fn on_tx_done(&mut self, flight: usize) {
        let (message, inv, held) = {
            let f = &self.flights[flight];
            self.trace.flights.push(FlightRecord {
                message: f.message,
                invocation: f.inv,
                injected_at: f.injected_at,
                path_complete_at: f.path_complete_at,
                delivered_at: self.now,
            });
            (f.message, f.inv, f.links[..f.acquired].to_vec())
        };
        self.emit(
            SimEventKind::FlitDelivered,
            message.index() as u32,
            inv as u32,
            NO_ID,
        );
        // Deliver to the destination task.
        let dst = self.tfg.message(message).dst();
        self.predecessor_arrived(dst, inv);

        // Release the captured path in hop order, granting waiters FCFS.
        // Link mutation stays inside one scoped borrow (as before events
        // existed) so the disabled-sink path pays only the emit branches.
        for l in held {
            let (since, waiter) = {
                let link = &mut self.links[l];
                let pos = link
                    .holders
                    .iter()
                    .position(|&h| h == flight)
                    .expect("released foreign channel");
                link.holders.swap_remove(pos);
                let since = self.hold_since[l].swap_remove(pos);
                let waiter = link.queue.pop_front();
                if let Some(w) = waiter {
                    link.holders.push(w);
                    self.hold_since[l].push(self.now);
                }
                (since, waiter)
            };
            self.link_busy[l] += self.now - since;
            self.emit(
                SimEventKind::LinkReleased,
                message.index() as u32,
                inv as u32,
                l as u32,
            );
            if let Some(w) = waiter {
                self.flights[w].acquired += 1;
                if self.events_on {
                    let fw = &self.flights[w];
                    self.emit(
                        SimEventKind::LinkAcquired,
                        fw.message.index() as u32,
                        fw.inv as u32,
                        l as u32,
                    );
                }
                self.advance(w);
            }
        }
    }
}
