//! The resident daemon: frame transport, request dispatch, and the
//! process entry points (`--stdio` and Unix socket).
//!
//! # Framing
//!
//! Both transports speak the same trivial binary framing: each request and
//! each response is one JSON document prefixed by its byte length as a
//! 32-bit big-endian integer. Frames above [`MAX_FRAME`] are rejected with
//! an `oversized` error — the payload is drained (so the connection
//! survives) but never buffered.
//!
//! # No-panic contract
//!
//! Nothing reachable from request bytes may take the daemon down: parsing
//! is total, the engine returns typed errors, and dispatch additionally
//! runs under `catch_unwind` as a last-resort backstop that converts any
//! latent bug into an `internal` error response (and a
//! `serve.errors.internal` counter hit).

use std::io::{self, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::audit::{
    ledger_hash, render_admit_record, render_evict_record, render_reject_record, spans_hash,
};
use crate::engine::{AdmitError, AdmitReport, Engine, Rejection, TenantSpec};
use crate::error::{ErrorKind, ServeError};
use crate::http::{self, OpsState};
use crate::json::parse;
use crate::protocol::{
    admit_error, parse_request, render_admit, render_batch, render_list, render_query, Request,
};
use sr_obs::{escape_json, CounterSnapshot, JournalWriter, MetricsRecorder, Recorder};

/// Maximum accepted frame payload, bytes (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// One frame-read outcome.
#[derive(Debug)]
pub enum FrameRead {
    /// Clean end of stream (no partial prefix).
    Eof,
    /// The prefix announced more than [`MAX_FRAME`] bytes; the payload was
    /// drained and discarded.
    Oversized(usize),
    /// A complete frame payload.
    Frame(Vec<u8>),
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Propagates transport I/O errors (including a stream that ends inside a
/// prefix or payload, surfaced as [`io::ErrorKind::UnexpectedEof`]).
pub fn read_frame(reader: &mut dyn Read) -> io::Result<FrameRead> {
    let mut prefix = [0u8; 4];
    match reader.read(&mut prefix[..1])? {
        0 => return Ok(FrameRead::Eof),
        _ => reader.read_exact(&mut prefix[1..])?,
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        // Drain without buffering so the connection stays usable.
        io::copy(&mut reader.take(len as u64), &mut io::sink())?;
        return Ok(FrameRead::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(FrameRead::Frame(payload))
}

/// Writes one length-prefixed frame and flushes.
///
/// # Errors
///
/// Propagates transport I/O errors.
pub fn write_frame(writer: &mut dyn Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()
}

/// The daemon: an [`Engine`], its metrics recorder, the scrape cursor,
/// and the optional out-of-band surfaces (HTTP exposition, audit journal).
pub struct Daemon {
    engine: Engine,
    rec: Arc<MetricsRecorder>,
    last_scrape: CounterSnapshot,
    ops: Option<Arc<OpsState>>,
    http_addr: Option<std::net::SocketAddr>,
    audit: Option<JournalWriter>,
    last_admission: String,
}

impl Daemon {
    /// A daemon around a fresh engine.
    pub fn new(engine: Engine) -> Daemon {
        Daemon {
            engine,
            rec: Arc::new(MetricsRecorder::new()),
            last_scrape: CounterSnapshot::default(),
            ops: None,
            http_addr: None,
            audit: None,
            last_admission: String::new(),
        }
    }

    /// The underlying engine (for tests and embedding).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The daemon's metrics recorder.
    pub fn recorder(&self) -> &MetricsRecorder {
        &self.rec
    }

    /// Starts the HTTP exposition listener (`/metrics`, `/healthz`,
    /// `/tenants`) on `addr` and returns the bound address (`:0` resolves
    /// to a real port). At most one listener per daemon.
    ///
    /// # Errors
    ///
    /// Bind/listen errors, or `AlreadyExists` if a listener is attached.
    pub fn attach_http(&mut self, addr: &str) -> io::Result<std::net::SocketAddr> {
        if self.ops.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "an HTTP listener is already attached",
            ));
        }
        let state = Arc::new(OpsState::new(Arc::clone(&self.rec)));
        state.publish(
            &self.engine,
            &self.last_admission,
            self.audit.as_ref().map(|j| (j.lines(), j.rotations())),
        );
        let bound = http::spawn(addr, Arc::clone(&state))?;
        self.ops = Some(state);
        self.http_addr = Some(bound);
        Ok(bound)
    }

    /// Attaches the admission audit journal at `path` with the default
    /// 8 MiB rotation budget. `meta` becomes the genesis
    /// `{"t":"meta","kind":"serve-audit",...}` line — record the engine
    /// configuration here so `serve-replay` can rebuild the engine.
    ///
    /// # Errors
    ///
    /// Journal file I/O errors.
    pub fn attach_journal(
        &mut self,
        path: &std::path::Path,
        meta: &[(&str, &str)],
    ) -> io::Result<()> {
        self.attach_journal_with(path, sr_obs::DEFAULT_MAX_BYTES, meta)
    }

    /// [`Daemon::attach_journal`] with an explicit rotation budget
    /// (clamped to ≥ 4 KiB by the writer).
    ///
    /// # Errors
    ///
    /// Journal file I/O errors.
    pub fn attach_journal_with(
        &mut self,
        path: &std::path::Path,
        max_bytes: u64,
        meta: &[(&str, &str)],
    ) -> io::Result<()> {
        let mut journal = JournalWriter::create(path, max_bytes)?;
        let mut pairs = vec![("kind", "serve-audit")];
        pairs.extend_from_slice(meta);
        journal.meta(&pairs)?;
        journal.flush()?;
        self.audit = Some(journal);
        Ok(())
    }

    /// Appends one audit line (write + flush so a crash loses at most the
    /// record being written). Journal failures are counted, not fatal —
    /// the admission path never dies for observability.
    fn audit_line(&mut self, line: &str) {
        let Some(journal) = &mut self.audit else {
            return;
        };
        match journal.raw(line).and_then(|()| journal.flush()) {
            Ok(()) => self.rec.add("serve.journal.records", 1),
            Err(_) => self.rec.add("serve.journal.errors", 1),
        }
    }

    /// Publishes the post-mutation snapshot to the HTTP listener.
    fn publish(&self) {
        if let Some(ops) = &self.ops {
            ops.publish(
                &self.engine,
                &self.last_admission,
                self.audit.as_ref().map(|j| (j.lines(), j.rotations())),
            );
        }
    }

    fn record_admit(&mut self, spec: &TenantSpec, report: &AdmitReport) {
        self.last_admission = format!(
            "{}: {}",
            report.name,
            if report.replayed {
                "replay"
            } else {
                report.rung.label()
            }
        );
        if self.audit.is_some() {
            let spans = self
                .engine
                .tenant(&report.name)
                .map_or(0, |t| spans_hash(&t.spans));
            let line = render_admit_record(spec, report, spans, ledger_hash(&self.engine));
            self.audit_line(&line);
        }
    }

    fn record_reject(&mut self, spec: &TenantSpec, rej: &Rejection) {
        self.last_admission = format!("{}: reject", spec.name);
        if self.audit.is_some() {
            let line = render_reject_record(spec, rej, ledger_hash(&self.engine));
            self.audit_line(&line);
        }
    }

    fn record_evict(&mut self, name: &str, latency_us: f64) {
        if self.audit.is_some() {
            let line = render_evict_record(name, latency_us, ledger_hash(&self.engine));
            self.audit_line(&line);
        }
    }

    /// Handles one request frame and returns `(response, shutdown)`.
    /// Infallible by contract: every outcome — including a panic in
    /// request handling — renders as a response document.
    pub fn handle_frame(&mut self, payload: &[u8]) -> (String, bool) {
        self.rec.add("serve.requests", 1);
        let result = catch_unwind(AssertUnwindSafe(|| self.dispatch(payload)));
        match result {
            Ok(outcome) => outcome,
            Err(_) => {
                let e = ServeError::new(
                    ErrorKind::Internal,
                    "request handling panicked; state may be stale — re-query before trusting it",
                );
                self.rec.add(&e.kind.counter(), 1);
                (e.render(), false)
            }
        }
    }

    /// Renders an `oversized` rejection for a drained frame.
    pub fn oversized_response(&mut self, announced: usize) -> String {
        let e = ServeError::new(
            ErrorKind::Oversized,
            format!("frame of {announced} bytes exceeds the {MAX_FRAME}-byte cap"),
        );
        self.rec.add("serve.requests", 1);
        self.rec.add(&e.kind.counter(), 1);
        e.render()
    }

    fn dispatch(&mut self, payload: &[u8]) -> (String, bool) {
        let doc = match parse(payload) {
            Ok(doc) => doc,
            Err(e) => {
                return self.fail(ServeError::new(
                    ErrorKind::Malformed,
                    format!("invalid JSON at byte {}: {}", e.offset, e.message),
                ))
            }
        };
        let request = match parse_request(&doc) {
            Ok(r) => r,
            Err(e) => return self.fail(e),
        };
        match request {
            Request::Admit(spec) => match self.engine.admit(&spec, self.rec.as_ref()) {
                Ok(report) => {
                    self.record_admit(&spec, &report);
                    self.publish();
                    (render_admit(&report), false)
                }
                Err(e) => {
                    if let AdmitError::Infeasible(rej) = &e {
                        self.record_reject(&spec, rej);
                        self.publish();
                    }
                    self.fail(admit_error(&e))
                }
            },
            Request::AdmitBatch(specs) => {
                let results = self.engine.admit_batch(&specs, self.rec.as_ref());
                for (spec, r) in specs.iter().zip(&results) {
                    match r {
                        Ok(report) => self.record_admit(spec, report),
                        Err(e) => {
                            self.rec.add(&admit_error(e).kind.counter(), 1);
                            if let AdmitError::Infeasible(rej) = e {
                                self.record_reject(spec, rej);
                            }
                        }
                    }
                }
                self.publish();
                (render_batch(&results), false)
            }
            Request::Evict(name) => {
                // The engine times the eviction into its histogram; the
                // audit record carries the daemon-side wall clock, taken
                // only when a journal is attached.
                let t0 = self.audit.as_ref().map(|_| std::time::Instant::now());
                match self.engine.evict(&name, self.rec.as_ref()) {
                    Ok(()) => {
                        let us = t0.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e6);
                        self.record_evict(&name, us);
                        self.publish();
                        (
                            format!(
                                "{{\"ok\":true,\"op\":\"evict\",\"tenant\":\"{}\"}}",
                                escape_json(&name)
                            ),
                            false,
                        )
                    }
                    Err(detail) => self.fail(ServeError::new(ErrorKind::UnknownTenant, detail)),
                }
            }
            Request::Query(name) => match self.engine.tenant(&name) {
                Some(t) => (render_query(t), false),
                None => self.fail(ServeError::new(
                    ErrorKind::UnknownTenant,
                    format!("no tenant named \"{name}\""),
                )),
            },
            Request::List => (render_list(&self.engine), false),
            Request::Stats { cumulative } => {
                self.rec.add("serve.scrapes", 1);
                if cumulative {
                    // Non-destructive: the full recorder state, leaving
                    // the delta cursor where it was.
                    (
                        format!(
                            "{{\"ok\":true,\"op\":\"stats\",\"mode\":\"cumulative\",\
                             \"prometheus\":\"{}\"}}",
                            escape_json(&self.rec.export_prometheus())
                        ),
                        false,
                    )
                } else {
                    let now = self.rec.counter_snapshot();
                    let delta = now.delta_since(&self.last_scrape);
                    self.last_scrape = now;
                    (
                        format!(
                            "{{\"ok\":true,\"op\":\"stats\",\"prometheus\":\"{}\"}}",
                            escape_json(&delta.export_prometheus())
                        ),
                        false,
                    )
                }
            }
            Request::Shutdown => {
                if let (Some(ops), Some(addr)) = (&self.ops, self.http_addr) {
                    ops.shutdown(addr);
                }
                ("{\"ok\":true,\"op\":\"shutdown\"}".to_string(), true)
            }
        }
    }

    fn fail(&mut self, e: ServeError) -> (String, bool) {
        self.rec.add(&e.kind.counter(), 1);
        (e.render(), false)
    }

    /// Serves one framed stream until EOF or a shutdown request. Returns
    /// whether shutdown was requested (so a socket accept loop knows to
    /// stop).
    ///
    /// # Errors
    ///
    /// Propagates transport I/O errors.
    pub fn serve_stream(
        &mut self,
        reader: &mut dyn Read,
        writer: &mut dyn Write,
    ) -> io::Result<bool> {
        loop {
            match read_frame(reader)? {
                FrameRead::Eof => return Ok(false),
                FrameRead::Oversized(n) => {
                    let resp = self.oversized_response(n);
                    write_frame(writer, &resp)?;
                }
                FrameRead::Frame(payload) => {
                    let (resp, shutdown) = self.handle_frame(&payload);
                    write_frame(writer, &resp)?;
                    if shutdown {
                        return Ok(true);
                    }
                }
            }
        }
    }

    /// Serves stdin/stdout until EOF or shutdown (the `--stdio`
    /// transport; also the golden-test harness).
    ///
    /// # Errors
    ///
    /// Propagates transport I/O errors.
    pub fn serve_stdio(&mut self) -> io::Result<()> {
        let stdin = io::stdin();
        let stdout = io::stdout();
        let mut reader = stdin.lock();
        let mut writer = stdout.lock();
        self.serve_stream(&mut reader, &mut writer)?;
        Ok(())
    }

    /// Binds a Unix socket and serves connections sequentially until one
    /// of them requests shutdown. A stale socket file at `path` is
    /// replaced.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept/transport I/O errors.
    #[cfg(unix)]
    pub fn serve_unix(&mut self, path: &std::path::Path) -> io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        loop {
            let (stream, _) = listener.accept()?;
            let mut reader = io::BufReader::new(stream.try_clone()?);
            let mut writer = io::BufWriter::new(stream);
            let shutdown = match self.serve_stream(&mut reader, &mut writer) {
                Ok(s) => s,
                // A client dropping mid-frame must not kill the daemon.
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => false,
                Err(e) => {
                    let _ = std::fs::remove_file(path);
                    return Err(e);
                }
            };
            if shutdown {
                let _ = std::fs::remove_file(path);
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use sr_obs::NOOP;
    use sr_topology::Torus;

    fn daemon() -> Daemon {
        let topo = Torus::new(&[4, 4]).expect("torus");
        Daemon::new(Engine::new(Box::new(topo), ServeConfig::default()))
    }

    fn frame(s: &str) -> Vec<u8> {
        let mut out = (s.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(s.as_bytes());
        out
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"list\"}").unwrap();
        let mut cursor = io::Cursor::new(buf);
        match read_frame(&mut cursor).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, b"{\"op\":\"list\"}"),
            other => panic!("unexpected {other:?}"),
        }
        match read_frame(&mut cursor).unwrap() {
            FrameRead::Eof => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oversized_frames_drain_and_report() {
        let mut bytes = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        bytes.extend(std::iter::repeat_n(b'x', MAX_FRAME + 1));
        bytes.extend_from_slice(&frame("{\"op\":\"list\"}"));
        let mut cursor = io::Cursor::new(bytes);
        let mut d = daemon();
        match read_frame(&mut cursor).unwrap() {
            FrameRead::Oversized(n) => {
                assert_eq!(n, MAX_FRAME + 1);
                let resp = d.oversized_response(n);
                assert!(resp.contains("\"kind\":\"oversized\""));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The next frame on the same stream still parses.
        match read_frame(&mut cursor).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, b"{\"op\":\"list\"}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn garbage_bytes_yield_typed_errors_not_panics() {
        let mut d = daemon();
        for junk in [
            &b"\xff\xfe\x00"[..],
            b"{\"op\":",
            b"42",
            b"{\"op\":\"admit\",\"tenant\":7}",
            b"{}",
        ] {
            let (resp, shutdown) = d.handle_frame(junk);
            assert!(!shutdown);
            assert!(resp.starts_with("{\"ok\":false"), "got: {resp}");
        }
        let counters = d.recorder().counters();
        assert_eq!(counters["serve.requests"], 5);
    }

    #[test]
    fn full_session_over_an_in_memory_stream() {
        let mut d = daemon();
        let mut input = Vec::new();
        let admit = r#"{"op":"admit","tenant":{"name":"t1","tfg":"task a 100\ntask b 100\nmsg m a -> b 256","placement":[0,1]}}"#;
        for req in [
            admit,
            r#"{"op":"list"}"#,
            r#"{"op":"query","tenant":"t1"}"#,
            r#"{"op":"stats"}"#,
            r#"{"op":"evict","tenant":"t1"}"#,
            r#"{"op":"shutdown"}"#,
        ] {
            input.extend_from_slice(&frame(req));
        }
        let mut reader = io::Cursor::new(input);
        let mut output = Vec::new();
        let shutdown = d.serve_stream(&mut reader, &mut output).unwrap();
        assert!(shutdown);
        let mut cursor = io::Cursor::new(output);
        let mut responses = Vec::new();
        while let FrameRead::Frame(p) = read_frame(&mut cursor).unwrap() {
            responses.push(String::from_utf8(p).unwrap());
        }
        assert_eq!(responses.len(), 6);
        assert!(
            responses[0].contains("\"rung\":\"fast\""),
            "{}",
            responses[0]
        );
        assert!(responses[1].contains("\"tenants\":[\"t1\"]"));
        assert!(responses[2].contains("\"op\":\"query\""));
        assert!(
            responses[3].contains("sr_serve_admit_total"),
            "{}",
            responses[3]
        );
        assert!(responses[4].contains("\"op\":\"evict\""));
        assert_eq!(responses[5], "{\"ok\":true,\"op\":\"shutdown\"}");
    }

    #[test]
    fn stats_deltas_reset_between_scrapes() {
        let mut d = daemon();
        let (first, _) = d.handle_frame(br#"{"op":"stats"}"#);
        assert!(first.contains("sr_serve_requests_total 1"), "{first}");
        let (second, _) = d.handle_frame(br#"{"op":"stats"}"#);
        // Only the delta since the first scrape: one request, one scrape.
        assert!(second.contains("sr_serve_requests_total 1"), "{second}");
        assert!(!second.contains("sr_serve_requests_total 2"), "{second}");
    }

    #[test]
    fn stats_cumulative_does_not_consume_the_delta() {
        let mut d = daemon();
        let (first, _) = d.handle_frame(br#"{"op":"stats","mode":"cumulative"}"#);
        assert!(first.contains("\"mode\":\"cumulative\""), "{first}");
        assert!(first.contains("sr_serve_requests_total 1"), "{first}");
        let (second, _) = d.handle_frame(br#"{"op":"stats","mode":"cumulative"}"#);
        // Cumulative keeps growing — nothing was reset.
        assert!(second.contains("sr_serve_requests_total 2"), "{second}");
        // The delta cursor was never touched: the first delta scrape sees
        // all three requests so far.
        let (third, _) = d.handle_frame(br#"{"op":"stats"}"#);
        assert!(third.contains("sr_serve_requests_total 3"), "{third}");
        // And a second delta sees only its own request.
        let (fourth, _) = d.handle_frame(br#"{"op":"stats"}"#);
        assert!(fourth.contains("sr_serve_requests_total 1"), "{fourth}");
        let (bad, _) = d.handle_frame(br#"{"op":"stats","mode":"sideways"}"#);
        assert!(bad.contains("\"kind\":\"malformed\""), "{bad}");
    }

    #[test]
    fn audit_journal_records_admits_evicts_and_rejects() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sr_serve_audit_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut d = daemon();
        d.attach_journal(&path, &[("topo", "torus:4x4")]).unwrap();
        let admit = r#"{"op":"admit","tenant":{"name":"t1","tfg":"task a 100\ntask b 100\nmsg m a -> b 256","placement":[0,1]}}"#;
        let (resp, _) = d.handle_frame(admit.as_bytes());
        assert!(resp.contains("\"rung\":\"fast\""), "{resp}");
        let (resp, _) = d.handle_frame(br#"{"op":"evict","tenant":"t1"}"#);
        assert!(resp.contains("\"op\":\"evict\""), "{resp}");
        let reject = r#"{"op":"admit","tenant":{"name":"hog","tfg":"task a 100\ntask b 100\nmsg m a -> b 2000000","placement":[0,1]}}"#;
        let (resp, _) = d.handle_frame(reject.as_bytes());
        assert!(resp.contains("\"kind\":\"infeasible\""), "{resp}");
        assert_eq!(d.recorder().counter("serve.journal.records"), 3);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(
            lines[0].contains("\"kind\":\"serve-audit\""),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"topo\":\"torus:4x4\""), "{}", lines[0]);
        // Re-drive a fresh engine from the records and verify each one.
        let mut fresh = daemon();
        for line in &lines[1..] {
            match crate::audit::parse_audit_line(line).expect("parses") {
                crate::audit::AuditLine::Record(r) => {
                    crate::audit::apply_record(&mut fresh.engine, &r, &NOOP).expect("verifies");
                }
                other => panic!("expected record, got {other:?}"),
            }
        }
        assert_eq!(
            crate::audit::ledger_hash(&fresh.engine),
            crate::audit::ledger_hash(&d.engine)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn http_listener_serves_the_daemon_workload() {
        let mut d = daemon();
        let addr = d.attach_http("127.0.0.1:0").unwrap();
        let admit = r#"{"op":"admit","tenant":{"name":"t1","tfg":"task a 100\ntask b 100\nmsg m a -> b 256","placement":[0,1]}}"#;
        let (resp, _) = d.handle_frame(admit.as_bytes());
        assert!(resp.contains("\"rung\":\"fast\""), "{resp}");
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write!(stream, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.contains("\"tenants\":1"), "{text}");
        assert!(text.contains("\"last_admission\":\"t1: fast\""), "{text}");
        assert!(
            d.attach_http("127.0.0.1:0").is_err(),
            "at most one listener"
        );
        let (_, shutdown) = d.handle_frame(br#"{"op":"shutdown"}"#);
        assert!(shutdown);
    }
}
