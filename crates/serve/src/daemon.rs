//! The resident daemon: frame transport, request dispatch, and the
//! process entry points (`--stdio` and Unix socket).
//!
//! # Framing
//!
//! Both transports speak the same trivial binary framing: each request and
//! each response is one JSON document prefixed by its byte length as a
//! 32-bit big-endian integer. Frames above [`MAX_FRAME`] are rejected with
//! an `oversized` error — the payload is drained (so the connection
//! survives) but never buffered.
//!
//! # No-panic contract
//!
//! Nothing reachable from request bytes may take the daemon down: parsing
//! is total, the engine returns typed errors, and dispatch additionally
//! runs under `catch_unwind` as a last-resort backstop that converts any
//! latent bug into an `internal` error response (and a
//! `serve.errors.internal` counter hit).

use std::io::{self, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::engine::Engine;
use crate::error::{ErrorKind, ServeError};
use crate::json::parse;
use crate::protocol::{
    admit_error, parse_request, render_admit, render_batch, render_list, render_query, Request,
};
use sr_obs::{escape_json, CounterSnapshot, MetricsRecorder, Recorder};

/// Maximum accepted frame payload, bytes (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// One frame-read outcome.
#[derive(Debug)]
pub enum FrameRead {
    /// Clean end of stream (no partial prefix).
    Eof,
    /// The prefix announced more than [`MAX_FRAME`] bytes; the payload was
    /// drained and discarded.
    Oversized(usize),
    /// A complete frame payload.
    Frame(Vec<u8>),
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Propagates transport I/O errors (including a stream that ends inside a
/// prefix or payload, surfaced as [`io::ErrorKind::UnexpectedEof`]).
pub fn read_frame(reader: &mut dyn Read) -> io::Result<FrameRead> {
    let mut prefix = [0u8; 4];
    match reader.read(&mut prefix[..1])? {
        0 => return Ok(FrameRead::Eof),
        _ => reader.read_exact(&mut prefix[1..])?,
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        // Drain without buffering so the connection stays usable.
        io::copy(&mut reader.take(len as u64), &mut io::sink())?;
        return Ok(FrameRead::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(FrameRead::Frame(payload))
}

/// Writes one length-prefixed frame and flushes.
///
/// # Errors
///
/// Propagates transport I/O errors.
pub fn write_frame(writer: &mut dyn Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()
}

/// The daemon: an [`Engine`], its metrics recorder, and the scrape cursor.
pub struct Daemon {
    engine: Engine,
    rec: MetricsRecorder,
    last_scrape: CounterSnapshot,
}

impl Daemon {
    /// A daemon around a fresh engine.
    pub fn new(engine: Engine) -> Daemon {
        Daemon {
            engine,
            rec: MetricsRecorder::new(),
            last_scrape: CounterSnapshot::default(),
        }
    }

    /// The underlying engine (for tests and embedding).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The daemon's metrics recorder.
    pub fn recorder(&self) -> &MetricsRecorder {
        &self.rec
    }

    /// Handles one request frame and returns `(response, shutdown)`.
    /// Infallible by contract: every outcome — including a panic in
    /// request handling — renders as a response document.
    pub fn handle_frame(&mut self, payload: &[u8]) -> (String, bool) {
        self.rec.add("serve.requests", 1);
        let result = catch_unwind(AssertUnwindSafe(|| self.dispatch(payload)));
        match result {
            Ok(outcome) => outcome,
            Err(_) => {
                let e = ServeError::new(
                    ErrorKind::Internal,
                    "request handling panicked; state may be stale — re-query before trusting it",
                );
                self.rec.add(&e.kind.counter(), 1);
                (e.render(), false)
            }
        }
    }

    /// Renders an `oversized` rejection for a drained frame.
    pub fn oversized_response(&mut self, announced: usize) -> String {
        let e = ServeError::new(
            ErrorKind::Oversized,
            format!("frame of {announced} bytes exceeds the {MAX_FRAME}-byte cap"),
        );
        self.rec.add("serve.requests", 1);
        self.rec.add(&e.kind.counter(), 1);
        e.render()
    }

    fn dispatch(&mut self, payload: &[u8]) -> (String, bool) {
        let doc = match parse(payload) {
            Ok(doc) => doc,
            Err(e) => {
                return self.fail(ServeError::new(
                    ErrorKind::Malformed,
                    format!("invalid JSON at byte {}: {}", e.offset, e.message),
                ))
            }
        };
        let request = match parse_request(&doc) {
            Ok(r) => r,
            Err(e) => return self.fail(e),
        };
        match request {
            Request::Admit(spec) => match self.engine.admit(&spec, &self.rec) {
                Ok(report) => (render_admit(&report), false),
                Err(e) => self.fail(admit_error(&e)),
            },
            Request::AdmitBatch(specs) => {
                let results = self.engine.admit_batch(&specs, &self.rec);
                for r in &results {
                    if let Err(e) = r {
                        self.rec.add(&admit_error(e).kind.counter(), 1);
                    }
                }
                (render_batch(&results), false)
            }
            Request::Evict(name) => match self.engine.evict(&name, &self.rec) {
                Ok(()) => (
                    format!(
                        "{{\"ok\":true,\"op\":\"evict\",\"tenant\":\"{}\"}}",
                        escape_json(&name)
                    ),
                    false,
                ),
                Err(detail) => self.fail(ServeError::new(ErrorKind::UnknownTenant, detail)),
            },
            Request::Query(name) => match self.engine.tenant(&name) {
                Some(t) => (render_query(t), false),
                None => self.fail(ServeError::new(
                    ErrorKind::UnknownTenant,
                    format!("no tenant named \"{name}\""),
                )),
            },
            Request::List => (render_list(&self.engine), false),
            Request::Stats => {
                self.rec.add("serve.scrapes", 1);
                let now = self.rec.counter_snapshot();
                let delta = now.delta_since(&self.last_scrape);
                self.last_scrape = now;
                (
                    format!(
                        "{{\"ok\":true,\"op\":\"stats\",\"prometheus\":\"{}\"}}",
                        escape_json(&delta.export_prometheus())
                    ),
                    false,
                )
            }
            Request::Shutdown => ("{\"ok\":true,\"op\":\"shutdown\"}".to_string(), true),
        }
    }

    fn fail(&mut self, e: ServeError) -> (String, bool) {
        self.rec.add(&e.kind.counter(), 1);
        (e.render(), false)
    }

    /// Serves one framed stream until EOF or a shutdown request. Returns
    /// whether shutdown was requested (so a socket accept loop knows to
    /// stop).
    ///
    /// # Errors
    ///
    /// Propagates transport I/O errors.
    pub fn serve_stream(
        &mut self,
        reader: &mut dyn Read,
        writer: &mut dyn Write,
    ) -> io::Result<bool> {
        loop {
            match read_frame(reader)? {
                FrameRead::Eof => return Ok(false),
                FrameRead::Oversized(n) => {
                    let resp = self.oversized_response(n);
                    write_frame(writer, &resp)?;
                }
                FrameRead::Frame(payload) => {
                    let (resp, shutdown) = self.handle_frame(&payload);
                    write_frame(writer, &resp)?;
                    if shutdown {
                        return Ok(true);
                    }
                }
            }
        }
    }

    /// Serves stdin/stdout until EOF or shutdown (the `--stdio`
    /// transport; also the golden-test harness).
    ///
    /// # Errors
    ///
    /// Propagates transport I/O errors.
    pub fn serve_stdio(&mut self) -> io::Result<()> {
        let stdin = io::stdin();
        let stdout = io::stdout();
        let mut reader = stdin.lock();
        let mut writer = stdout.lock();
        self.serve_stream(&mut reader, &mut writer)?;
        Ok(())
    }

    /// Binds a Unix socket and serves connections sequentially until one
    /// of them requests shutdown. A stale socket file at `path` is
    /// replaced.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept/transport I/O errors.
    #[cfg(unix)]
    pub fn serve_unix(&mut self, path: &std::path::Path) -> io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        loop {
            let (stream, _) = listener.accept()?;
            let mut reader = io::BufReader::new(stream.try_clone()?);
            let mut writer = io::BufWriter::new(stream);
            let shutdown = match self.serve_stream(&mut reader, &mut writer) {
                Ok(s) => s,
                // A client dropping mid-frame must not kill the daemon.
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => false,
                Err(e) => {
                    let _ = std::fs::remove_file(path);
                    return Err(e);
                }
            };
            if shutdown {
                let _ = std::fs::remove_file(path);
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use sr_topology::Torus;

    fn daemon() -> Daemon {
        let topo = Torus::new(&[4, 4]).expect("torus");
        Daemon::new(Engine::new(Box::new(topo), ServeConfig::default()))
    }

    fn frame(s: &str) -> Vec<u8> {
        let mut out = (s.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(s.as_bytes());
        out
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"list\"}").unwrap();
        let mut cursor = io::Cursor::new(buf);
        match read_frame(&mut cursor).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, b"{\"op\":\"list\"}"),
            other => panic!("unexpected {other:?}"),
        }
        match read_frame(&mut cursor).unwrap() {
            FrameRead::Eof => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oversized_frames_drain_and_report() {
        let mut bytes = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        bytes.extend(std::iter::repeat_n(b'x', MAX_FRAME + 1));
        bytes.extend_from_slice(&frame("{\"op\":\"list\"}"));
        let mut cursor = io::Cursor::new(bytes);
        let mut d = daemon();
        match read_frame(&mut cursor).unwrap() {
            FrameRead::Oversized(n) => {
                assert_eq!(n, MAX_FRAME + 1);
                let resp = d.oversized_response(n);
                assert!(resp.contains("\"kind\":\"oversized\""));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The next frame on the same stream still parses.
        match read_frame(&mut cursor).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, b"{\"op\":\"list\"}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn garbage_bytes_yield_typed_errors_not_panics() {
        let mut d = daemon();
        for junk in [
            &b"\xff\xfe\x00"[..],
            b"{\"op\":",
            b"42",
            b"{\"op\":\"admit\",\"tenant\":7}",
            b"{}",
        ] {
            let (resp, shutdown) = d.handle_frame(junk);
            assert!(!shutdown);
            assert!(resp.starts_with("{\"ok\":false"), "got: {resp}");
        }
        let counters = d.recorder().counters();
        assert_eq!(counters["serve.requests"], 5);
    }

    #[test]
    fn full_session_over_an_in_memory_stream() {
        let mut d = daemon();
        let mut input = Vec::new();
        let admit = r#"{"op":"admit","tenant":{"name":"t1","tfg":"task a 100\ntask b 100\nmsg m a -> b 256","placement":[0,1]}}"#;
        for req in [
            admit,
            r#"{"op":"list"}"#,
            r#"{"op":"query","tenant":"t1"}"#,
            r#"{"op":"stats"}"#,
            r#"{"op":"evict","tenant":"t1"}"#,
            r#"{"op":"shutdown"}"#,
        ] {
            input.extend_from_slice(&frame(req));
        }
        let mut reader = io::Cursor::new(input);
        let mut output = Vec::new();
        let shutdown = d.serve_stream(&mut reader, &mut output).unwrap();
        assert!(shutdown);
        let mut cursor = io::Cursor::new(output);
        let mut responses = Vec::new();
        while let FrameRead::Frame(p) = read_frame(&mut cursor).unwrap() {
            responses.push(String::from_utf8(p).unwrap());
        }
        assert_eq!(responses.len(), 6);
        assert!(
            responses[0].contains("\"rung\":\"fast\""),
            "{}",
            responses[0]
        );
        assert!(responses[1].contains("\"tenants\":[\"t1\"]"));
        assert!(responses[2].contains("\"op\":\"query\""));
        assert!(
            responses[3].contains("sr_serve_admit_total"),
            "{}",
            responses[3]
        );
        assert!(responses[4].contains("\"op\":\"evict\""));
        assert_eq!(responses[5], "{\"ok\":true,\"op\":\"shutdown\"}");
    }

    #[test]
    fn stats_deltas_reset_between_scrapes() {
        let mut d = daemon();
        let (first, _) = d.handle_frame(br#"{"op":"stats"}"#);
        assert!(first.contains("sr_serve_requests_total 1"), "{first}");
        let (second, _) = d.handle_frame(br#"{"op":"stats"}"#);
        // Only the delta since the first scrape: one request, one scrape.
        assert!(second.contains("sr_serve_requests_total 1"), "{second}");
        assert!(!second.contains("sr_serve_requests_total 2"), "{second}");
    }
}
