//! The out-of-band operational surface: a std-only HTTP/1.1 listener
//! serving `GET /metrics`, `GET /healthz`, and `GET /tenants` on a
//! separate thread.
//!
//! The admission path never waits on HTTP: the daemon *publishes* a
//! pre-rendered snapshot ([`OpsState::publish`]) after each mutation, and
//! the listener thread serves whatever snapshot is current — the only
//! shared state is the snapshot mutex (held for a clone) and the
//! [`MetricsRecorder`]'s own mutex, the same discipline the in-band
//! `stats` op already uses. Responses close the connection (`Connection:
//! close`), keep-alive is deliberately unsupported, and malformed or
//! non-GET requests get typed 4xx/405 responses — an exposition endpoint,
//! not a web server.
//!
//! Unlike the framed protocol, HTTP responses are *not* byte-deterministic
//! (`/metrics` carries latency histograms, `/healthz` an uptime) — which
//! is why this surface is out-of-band and the golden-transcript contract
//! applies only to frames.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::engine::Engine;
use sr_obs::{escape_json, json_num, MetricsRecorder, Recorder};

/// Largest accepted request head (request line + headers), bytes.
const MAX_REQUEST: usize = 8 * 1024;

/// What the listener thread shares with the daemon.
pub struct OpsState {
    rec: Arc<MetricsRecorder>,
    started: Instant,
    snap: Mutex<OpsSnapshot>,
    stop: AtomicBool,
}

/// The pre-rendered daemon state the endpoints serve.
#[derive(Default, Clone)]
struct OpsSnapshot {
    tenants_json: String,
    tenant_count: usize,
    last_admission: String,
    journal_attached: bool,
    journal_lines: u64,
    journal_rotations: u64,
}

impl OpsState {
    /// A fresh state around the daemon's recorder.
    pub fn new(rec: Arc<MetricsRecorder>) -> OpsState {
        OpsState {
            rec,
            started: Instant::now(),
            snap: Mutex::new(OpsSnapshot {
                tenants_json: "[]".to_string(),
                ..OpsSnapshot::default()
            }),
            stop: AtomicBool::new(false),
        }
    }

    /// Publishes a fresh snapshot: the daemon calls this after every
    /// engine mutation (and once at attach time). Rendering happens on
    /// the daemon thread; the listener only clones strings.
    pub fn publish(&self, engine: &Engine, last_admission: &str, journal: Option<(u64, u64)>) {
        let mut items = Vec::new();
        for t in engine.tenants() {
            let links: Vec<String> = t
                .spans
                .iter()
                .map(|(l, spans)| {
                    let busy: f64 = spans.iter().map(|&(s, e)| e - s).sum();
                    format!("{{\"link\":{},\"busy_us\":{}}}", l.index(), json_num(busy))
                })
                .collect();
            items.push(format!(
                "{{\"name\":\"{}\",\"seq\":{},\"rung\":\"{}\",\"scale\":{},\"messages\":{},\
                 \"links\":[{}]}}",
                escape_json(&t.name),
                t.seq,
                t.rung.label(),
                json_num(t.scale),
                t.tfg.num_messages(),
                links.join(",")
            ));
        }
        let snap = OpsSnapshot {
            tenant_count: items.len(),
            tenants_json: format!("[{}]", items.join(",")),
            last_admission: last_admission.to_string(),
            journal_attached: journal.is_some(),
            journal_lines: journal.map_or(0, |(l, _)| l),
            journal_rotations: journal.map_or(0, |(_, r)| r),
        };
        *self
            .snap
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = snap;
    }

    /// Asks the listener thread to exit after its next accepted (or
    /// self-injected) connection.
    pub fn shutdown(&self, addr: SocketAddr) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop; the connection is dropped unserved.
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
    }

    fn snapshot(&self) -> OpsSnapshot {
        self.snap
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and spawns the listener thread.
/// Returns the bound address (port 0 resolves to a real port).
///
/// # Errors
///
/// Bind/listen errors; everything after the spawn is handled (and
/// counted) on the listener thread.
pub fn spawn(addr: &str, state: Arc<OpsState>) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("sr-serve-http".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if state.stop.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => handle(s, &state),
                    Err(_) => state.rec.add("serve.http.errors", 1),
                }
            }
        })?;
    Ok(bound)
}

/// Serves one connection: read the head, route, respond, close.
fn handle(mut stream: TcpStream, state: &OpsState) {
    state.rec.add("serve.http.requests", 1);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let complete = loop {
        match stream.read(&mut buf) {
            Ok(0) => break false,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") {
                    break true;
                }
                if head.len() > MAX_REQUEST {
                    break false;
                }
            }
            Err(_) => break false,
        }
    };
    if !complete {
        state.rec.add("serve.http.errors", 1);
        respond(
            &mut stream,
            "400 Bad Request",
            "text/plain",
            "bad request\n",
        );
        return;
    }
    let request_line = head
        .split(|&b| b == b'\r')
        .next()
        .map(String::from_utf8_lossy)
        .unwrap_or_default()
        .into_owned();
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        state.rec.add("serve.http.errors", 1);
        respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
        return;
    }
    match path {
        "/metrics" => {
            state.rec.add("serve.http.metrics", 1);
            let body = state.rec.export_prometheus();
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/healthz" => {
            state.rec.add("serve.http.healthz", 1);
            let snap = state.snapshot();
            let body = format!(
                "{{\"ok\":true,\"uptime_us\":{},\"requests\":{},\"tenants\":{},\
                 \"last_admission\":\"{}\",\"journal\":{{\"attached\":{},\"lines\":{},\
                 \"rotations\":{}}}}}\n",
                state.started.elapsed().as_micros(),
                state.rec.counter("serve.requests"),
                snap.tenant_count,
                escape_json(&snap.last_admission),
                snap.journal_attached,
                snap.journal_lines,
                snap.journal_rotations
            );
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/tenants" => {
            state.rec.add("serve.http.tenants", 1);
            let snap = state.snapshot();
            let body = format!(
                "{{\"ok\":true,\"count\":{},\"tenants\":{}}}\n",
                snap.tenant_count, snap.tenants_json
            );
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        _ => {
            state.rec.add("serve.http.not_found", 1);
            respond(&mut stream, "404 Not Found", "text/plain", "not found\n");
        }
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Placement, ServeConfig, TenantSpec};
    use sr_topology::Torus;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connects");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).expect("reads");
        let (head, body) = text.split_once("\r\n\r\n").expect("has head");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn endpoints_serve_metrics_health_and_tenants() {
        let rec = Arc::new(MetricsRecorder::new());
        let topo = Torus::new(&[4, 4]).expect("torus");
        let mut engine = Engine::new(Box::new(topo), ServeConfig::default());
        let spec = TenantSpec {
            name: "t1".into(),
            tfg_text: "task a 100\ntask b 100\nmsg m a -> b 256".into(),
            placement: Placement::Nodes(vec![0, 1]),
            best_effort: false,
        };
        engine.admit(&spec, rec.as_ref()).expect("admits");
        let state = Arc::new(OpsState::new(Arc::clone(&rec)));
        state.publish(&engine, "t1: fast", Some((3, 0)));
        let addr = spawn("127.0.0.1:0", Arc::clone(&state)).expect("binds");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("version=0.0.4"), "{head}");
        assert!(body.contains("sr_serve_admit_total 1"), "{body}");
        assert!(
            body.contains("sr_serve_admit_latency_fast{quantile=\"0.5\"}"),
            "{body}"
        );

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"ok\":true"), "{body}");
        assert!(body.contains("\"tenants\":1"), "{body}");
        assert!(body.contains("\"last_admission\":\"t1: fast\""), "{body}");
        assert!(body.contains("\"attached\":true"), "{body}");

        let (head, body) = get(addr, "/tenants");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"name\":\"t1\""), "{body}");
        assert!(body.contains("\"rung\":\"fast\""), "{body}");
        assert!(body.contains("\"busy_us\":"), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert_eq!(rec.counter("serve.http.not_found"), 1);
        assert_eq!(rec.counter("serve.http.requests"), 4);

        state.shutdown(addr);
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let rec = Arc::new(MetricsRecorder::new());
        let state = Arc::new(OpsState::new(Arc::clone(&rec)));
        let addr = spawn("127.0.0.1:0", Arc::clone(&state)).expect("binds");
        let mut stream = TcpStream::connect(addr).expect("connects");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).expect("reads");
        assert!(text.starts_with("HTTP/1.1 405"), "{text}");
        state.shutdown(addr);
    }
}
