//! A minimal, non-panicking JSON value parser for the serve protocol.
//!
//! The workspace hand-rolls all of its JSON (no serde): `sr-obs` emits
//! flat trace/journal objects and parses them back with a scalar-only
//! reader, `sr-bench`'s gate walks numeric leaves. The serve protocol is
//! the first consumer of *nested* documents arriving from an untrusted
//! byte stream, so this parser handles the full value grammar (objects,
//! arrays, strings with escapes, numbers, booleans, null) and returns
//! `Err` — never panics — on malformed input, with a byte offset for the
//! error message. Depth is capped so deeply nested garbage cannot blow the
//! stack.

use std::collections::BTreeMap;

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (`BTreeMap`); duplicate keys keep the
    /// last occurrence, like every mainstream parser.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The key–value map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on an object; `None` for absent keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

/// Parses one JSON document from `bytes` (UTF-8), requiring the document
/// to span the whole input (trailing whitespace allowed).
///
/// # Errors
///
/// [`JsonError`] on invalid UTF-8, malformed syntax, excessive nesting, or
/// trailing garbage. Never panics.
pub fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
    let text = std::str::from_utf8(bytes).map_err(|e| JsonError {
        message: format!("invalid utf-8: {e}"),
        offset: e.valid_up_to(),
    })?;
    let mut p = Parser {
        s: text.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.i,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.s.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, c: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.s[self.i..].starts_with(b"\\u") {
                                    self.i += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid codepoint"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8 is already validated; copy the char.
                    let rest = &self.s[self.i..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = text.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .s
            .get(self.i..self.i + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.i += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| {
            c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-'
        }) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).expect("ascii slice");
        let v: f64 = text.parse().map_err(|_| JsonError {
            message: "invalid number".to_string(),
            offset: start,
        })?;
        if !v.is_finite() {
            return Err(JsonError {
                message: "number out of range".to_string(),
                offset: start,
            });
        }
        Ok(Json::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(br#"{"op":"admit","n":3,"a":[1,2.5,-4e2],"o":{"x":null,"y":true}}"#)
            .expect("parses");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("admit"));
        assert_eq!(v.get("n").and_then(Json::as_num), Some(3.0));
        let a = v.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(a[2], Json::Num(-400.0));
        assert_eq!(v.get("o").and_then(|o| o.get("y")), Some(&Json::Bool(true)));
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(br#""a\n\"b\"\u0041\ud83d\ude00""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\n\"b\"A😀"));
    }

    #[test]
    fn rejects_malformed_without_panicking() {
        for bad in [
            &b"{"[..],
            b"[1,",
            b"{\"a\" 1}",
            b"nul",
            b"\"unterminated",
            b"1 2",
            b"{\"a\":}",
            b"\xff\xfe",
            b"",
            b"[1e999]",
            b"\"\\u12\"",
            b"\"\\ud800x\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let mut doc = Vec::new();
        doc.extend(std::iter::repeat_n(b'[', 64));
        doc.extend(std::iter::repeat_n(b']', 64));
        assert!(parse(&doc).is_err());
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = parse(br#"{"a":1,"a":2}"#).expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_num), Some(2.0));
    }
}
