//! The request/response wire protocol.
//!
//! Requests and responses are single JSON documents (framed by the
//! transport, see [`crate::daemon`]). Parsing is total: any byte sequence
//! maps to either a [`Request`] or a typed [`ServeError`] — never a panic.
//!
//! # Requests
//!
//! ```json
//! {"op":"admit","tenant":{"name":"cam0","tfg":"task a 100\n...","placement":[0,1],"best_effort":false}}
//! {"op":"admit_batch","tenants":[{...},{...}]}
//! {"op":"evict","tenant":"cam0"}
//! {"op":"query","tenant":"cam0"}
//! {"op":"list"}
//! {"op":"stats"}
//! {"op":"stats","mode":"cumulative"}
//! {"op":"shutdown"}
//! ```
//!
//! `placement` is either an array of node ids (one per task, in task
//! order) or a strategy string (`"greedy"`, `"roundrobin"`,
//! `"scatter:<seed>"`). `best_effort` defaults to `false`. `stats`
//! defaults to `"mode":"delta"` (counter increments since the previous
//! delta scrape, which it consumes); `"cumulative"` is non-destructive —
//! it renders the recorder's full state and leaves the delta cursor
//! untouched, so a dropped connection after a cumulative scrape loses
//! nothing.
//!
//! # Responses
//!
//! Every response carries `"ok"`: successes echo `"op"` and add
//! op-specific members; failures are [`ServeError::render`] documents with
//! a stable `"kind"` label. Member order is fixed — responses are
//! byte-deterministic for golden testing.

use crate::engine::{AdmitError, AdmitReport, Engine, Placement, Rejection, Tenant, TenantSpec};
use crate::error::{ErrorKind, ServeError};
use crate::json::Json;
use sr_obs::{escape_json, json_num};

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit one tenant.
    Admit(TenantSpec),
    /// Admit several tenants in one deterministic batch.
    AdmitBatch(Vec<TenantSpec>),
    /// Evict a tenant by name.
    Evict(String),
    /// Describe one admitted tenant.
    Query(String),
    /// List admitted tenant names.
    List,
    /// Prometheus scrape: counter deltas since the last delta scrape
    /// (default), or the recorder's full cumulative state.
    Stats {
        /// `true` for `"mode":"cumulative"` (non-destructive full export).
        cumulative: bool,
    },
    /// Stop the daemon after responding.
    Shutdown,
}

/// Parses a request document.
///
/// # Errors
///
/// [`ServeError`] with kind `malformed` (not an object / unknown op /
/// wrong member types) or `invalid_spec` (a tenant spec member is
/// structurally wrong).
pub fn parse_request(doc: &Json) -> Result<Request, ServeError> {
    let obj = doc
        .as_obj()
        .ok_or_else(|| ServeError::new(ErrorKind::Malformed, "request must be a JSON object"))?;
    let op = obj
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::new(ErrorKind::Malformed, "missing string member \"op\""))?;
    match op {
        "admit" => {
            let spec = obj
                .get("tenant")
                .ok_or_else(|| missing("admit", "tenant"))
                .and_then(parse_spec)?;
            Ok(Request::Admit(spec))
        }
        "admit_batch" => {
            let arr = obj
                .get("tenants")
                .and_then(Json::as_arr)
                .ok_or_else(|| missing("admit_batch", "tenants"))?;
            let specs = arr.iter().map(parse_spec).collect::<Result<Vec<_>, _>>()?;
            Ok(Request::AdmitBatch(specs))
        }
        "evict" => Ok(Request::Evict(tenant_name(obj, "evict")?)),
        "query" => Ok(Request::Query(tenant_name(obj, "query")?)),
        "list" => Ok(Request::List),
        "stats" => {
            let cumulative = match obj.get("mode") {
                None => false,
                Some(v) => match v.as_str() {
                    Some("delta") => false,
                    Some("cumulative") => true,
                    _ => {
                        return Err(ServeError::new(
                            ErrorKind::Malformed,
                            "stats \"mode\" must be \"delta\" or \"cumulative\"",
                        ))
                    }
                },
            };
            Ok(Request::Stats { cumulative })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ServeError::new(
            ErrorKind::Malformed,
            format!("unknown op \"{other}\""),
        )),
    }
}

fn missing(op: &str, member: &str) -> ServeError {
    ServeError::new(
        ErrorKind::Malformed,
        format!("op \"{op}\" requires member \"{member}\""),
    )
}

fn tenant_name(
    obj: &std::collections::BTreeMap<String, Json>,
    op: &str,
) -> Result<String, ServeError> {
    obj.get("tenant")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| missing(op, "tenant"))
}

/// Parses one tenant spec object.
fn parse_spec(doc: &Json) -> Result<TenantSpec, ServeError> {
    let obj = doc.as_obj().ok_or_else(|| {
        ServeError::new(ErrorKind::InvalidSpec, "tenant spec must be a JSON object")
    })?;
    let name = obj
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::new(ErrorKind::InvalidSpec, "spec missing string \"name\""))?
        .to_string();
    let tfg_text = obj
        .get("tfg")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::new(ErrorKind::InvalidSpec, "spec missing string \"tfg\""))?
        .to_string();
    let placement = match obj.get("placement") {
        Some(Json::Str(s)) => Placement::Strategy(s.clone()),
        Some(Json::Arr(items)) => {
            let mut nodes = Vec::with_capacity(items.len());
            for item in items {
                let n = item.as_num().ok_or_else(|| {
                    ServeError::new(ErrorKind::InvalidSpec, "placement nodes must be numbers")
                })?;
                if n < 0.0 || n.fract() != 0.0 || n > u32::MAX as f64 {
                    return Err(ServeError::new(
                        ErrorKind::InvalidSpec,
                        format!("placement node {n} is not a valid node id"),
                    ));
                }
                nodes.push(n as usize);
            }
            Placement::Nodes(nodes)
        }
        _ => {
            return Err(ServeError::new(
                ErrorKind::InvalidSpec,
                "spec missing \"placement\" (node array or strategy string)",
            ))
        }
    };
    let best_effort = match obj.get("best_effort") {
        None => false,
        Some(v) => v.as_bool().ok_or_else(|| {
            ServeError::new(ErrorKind::InvalidSpec, "\"best_effort\" must be a boolean")
        })?,
    };
    Ok(TenantSpec {
        name,
        tfg_text,
        placement,
        best_effort,
    })
}

/// Renders a successful admission response body (also used per-item in
/// batch responses).
pub fn render_admit(report: &AdmitReport) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"admit\",\"tenant\":\"{}\",\"rung\":\"{}\",\"scale\":{},\
         \"memo_hit\":{},\"replayed\":{},\"messages\":{},\"links_used\":{}}}",
        escape_json(&report.name),
        report.rung.label(),
        json_num(report.scale),
        report.memo_hit,
        report.replayed,
        report.messages,
        report.links_used
    )
}

/// Maps an [`AdmitError`] to its typed protocol error.
pub fn admit_error(err: &AdmitError) -> ServeError {
    match err {
        AdmitError::Duplicate(name) => ServeError::new(
            ErrorKind::DuplicateTenant,
            format!("tenant \"{name}\" is already admitted"),
        ),
        AdmitError::InvalidSpec(detail) => ServeError::new(ErrorKind::InvalidSpec, detail.clone()),
        AdmitError::Infeasible(rej) => rejection_error(rej),
        AdmitError::Internal(detail) => ServeError::new(ErrorKind::Internal, detail.clone()),
    }
}

/// Renders a rejection as an `infeasible` error with the diagnosis and
/// bottleneck list spliced in.
fn rejection_error(rej: &Rejection) -> ServeError {
    let mut e = ServeError::new(ErrorKind::Infeasible, rej.detail.clone());
    e.extra.push(format!("\"rungs_tried\":{}", rej.rungs_tried));
    if let Some(diag) = &rej.diagnosis {
        e.extra
            .push(format!("\"diagnosis\":\"{}\"", escape_json(diag)));
    }
    if !rej.saturated.is_empty() {
        let items: Vec<String> = rej
            .saturated
            .iter()
            .map(|(l, busy)| format!("{{\"link\":{},\"busy\":{}}}", l.index(), json_num(*busy)))
            .collect();
        e.extra.push(format!("\"saturated\":[{}]", items.join(",")));
    }
    e
}

/// Renders the batch response: one result document per spec, in order.
pub fn render_batch(results: &[Result<AdmitReport, AdmitError>]) -> String {
    let items: Vec<String> = results
        .iter()
        .map(|r| match r {
            Ok(report) => render_admit(report),
            Err(e) => admit_error(e).render(),
        })
        .collect();
    format!(
        "{{\"ok\":true,\"op\":\"admit_batch\",\"results\":[{}],\"count\":{}}}",
        items.join(","),
        results.len()
    )
}

/// Renders the query response for an admitted tenant.
pub fn render_query(t: &Tenant) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"query\",\"tenant\":{{\"name\":\"{}\",\"seq\":{},\"rung\":\"{}\",\
         \"scale\":{},\"messages\":{},\"links_used\":{},\"grants\":{}}}}}",
        escape_json(&t.name),
        t.seq,
        t.rung.label(),
        json_num(t.scale),
        t.tfg.num_messages(),
        t.spans.len(),
        t.grants.len()
    )
}

/// Renders the list response (names in lexicographic order).
pub fn render_list(engine: &Engine) -> String {
    let names: Vec<String> = engine
        .tenants()
        .map(|t| format!("\"{}\"", escape_json(&t.name)))
        .collect();
    format!(
        "{{\"ok\":true,\"op\":\"list\",\"tenants\":[{}],\"count\":{}}}",
        names.join(","),
        names.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn parses_each_op() {
        let admit =
            parse(br#"{"op":"admit","tenant":{"name":"t","tfg":"task a 1","placement":"greedy"}}"#)
                .unwrap();
        match parse_request(&admit).unwrap() {
            Request::Admit(spec) => {
                assert_eq!(spec.name, "t");
                assert_eq!(spec.placement, Placement::Strategy("greedy".into()));
                assert!(!spec.best_effort);
            }
            other => panic!("wrong request: {other:?}"),
        }
        let evict = parse(br#"{"op":"evict","tenant":"t"}"#).unwrap();
        assert_eq!(parse_request(&evict).unwrap(), Request::Evict("t".into()));
        for (bytes, want) in [
            (&br#"{"op":"list"}"#[..], Request::List),
            (
                &br#"{"op":"stats"}"#[..],
                Request::Stats { cumulative: false },
            ),
            (
                &br#"{"op":"stats","mode":"delta"}"#[..],
                Request::Stats { cumulative: false },
            ),
            (
                &br#"{"op":"stats","mode":"cumulative"}"#[..],
                Request::Stats { cumulative: true },
            ),
            (&br#"{"op":"shutdown"}"#[..], Request::Shutdown),
        ] {
            assert_eq!(parse_request(&parse(bytes).unwrap()).unwrap(), want);
        }
        let bad = parse(br#"{"op":"stats","mode":"sideways"}"#).unwrap();
        assert_eq!(parse_request(&bad).unwrap_err().kind, ErrorKind::Malformed);
        let bad = parse(br#"{"op":"stats","mode":7}"#).unwrap();
        assert_eq!(parse_request(&bad).unwrap_err().kind, ErrorKind::Malformed);
    }

    #[test]
    fn placement_nodes_parse_and_validate() {
        let doc = parse(br#"{"op":"admit","tenant":{"name":"t","tfg":"x","placement":[3,1,4]}}"#)
            .unwrap();
        match parse_request(&doc).unwrap() {
            Request::Admit(spec) => assert_eq!(spec.placement, Placement::Nodes(vec![3, 1, 4])),
            other => panic!("wrong request: {other:?}"),
        }
        let bad =
            parse(br#"{"op":"admit","tenant":{"name":"t","tfg":"x","placement":[1.5]}}"#).unwrap();
        assert_eq!(
            parse_request(&bad).unwrap_err().kind,
            ErrorKind::InvalidSpec
        );
    }

    #[test]
    fn unknown_and_malformed_are_typed() {
        let doc = parse(br#"{"op":"frobnicate"}"#).unwrap();
        assert_eq!(parse_request(&doc).unwrap_err().kind, ErrorKind::Malformed);
        let doc = parse(br#"[1,2,3]"#).unwrap();
        assert_eq!(parse_request(&doc).unwrap_err().kind, ErrorKind::Malformed);
        let doc = parse(br#"{"op":"evict"}"#).unwrap();
        assert_eq!(parse_request(&doc).unwrap_err().kind, ErrorKind::Malformed);
    }
}
