//! The admission **audit journal**: one JSONL record per engine mutation,
//! enough to re-drive a fresh engine and *prove* the daemon's determinism
//! contract from the trail alone.
//!
//! Every admit/evict/reject appends a `{"t":"audit",...}` line (written
//! through [`sr_obs::JournalWriter`]'s rotation machinery) carrying the
//! tenant spec, the outcome (rung, scale, rungs tried), the wall-clock
//! ladder timings, and two FNV-1a fingerprints of the *post-operation*
//! state: the admitted tenant's own spans and the whole ledger. Replay
//! ([`apply_record`]) feeds the recorded spec back into a fresh
//! [`Engine`] built from the journal's meta line and checks that the
//! reconstructed outcome and both fingerprints match bit-for-bit.
//!
//! Replay deliberately does **not** compare the `replayed`/`memo_hit`
//! flags: memos are caches, not allocator state, so a fresh engine may
//! take the cold ladder where the original session replayed a memo — the
//! resulting tenant table and ledger are identical either way (that is
//! the determinism guarantee being audited), and the hashes prove it.
//!
//! Timestamps appear only inside the records (`latency_us`, `ladder`);
//! they are carried through replay untouched and never influence it.

use std::collections::BTreeMap;

use crate::engine::{AdmitError, AdmitReport, Engine, Placement, Rejection, TenantSpec};
use crate::json::{parse, Json};
use sr_obs::{escape_json, json_num, Recorder};
use sr_topology::LinkId;

/// FNV-1a 64-bit fingerprint of a span table (the ledger, or one tenant's
/// spans): link indices, span counts, and the exact f64 bit patterns.
/// Stable across processes — no pointer or ordering nondeterminism
/// (`BTreeMap` iteration is sorted).
pub fn spans_hash(spans: &BTreeMap<LinkId, Vec<(f64, f64)>>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: [u8; 8]| {
        for b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for (l, row) in spans {
        eat((l.index() as u64).to_le_bytes());
        eat((row.len() as u64).to_le_bytes());
        for &(s, e) in row {
            eat(s.to_bits().to_le_bytes());
            eat(e.to_bits().to_le_bytes());
        }
    }
    h
}

/// The ledger fingerprint: [`spans_hash`] of [`Engine::ledger`].
pub fn ledger_hash(engine: &Engine) -> u64 {
    spans_hash(&engine.ledger())
}

/// Renders a tenant spec as the audit `"spec"` member.
fn render_spec(spec: &TenantSpec) -> String {
    let placement = match &spec.placement {
        Placement::Strategy(s) => format!("\"{}\"", escape_json(s)),
        Placement::Nodes(nodes) => {
            let items: Vec<String> = nodes.iter().map(usize::to_string).collect();
            format!("[{}]", items.join(","))
        }
    };
    format!(
        "{{\"tfg\":\"{}\",\"placement\":{placement},\"best_effort\":{}}}",
        escape_json(&spec.tfg_text),
        spec.best_effort
    )
}

/// Renders the `"ladder"` member: `[["stage",µs],...]` in ladder order.
fn render_ladder(laps: &[(&'static str, f64)]) -> String {
    let items: Vec<String> = laps
        .iter()
        .map(|(s, us)| format!("[\"{s}\",{}]", json_num(*us)))
        .collect();
    format!("[{}]", items.join(","))
}

/// Renders the audit record for a successful admission. `spans` is the
/// admitted tenant's own span fingerprint and `ledger` the post-admission
/// ledger fingerprint (both via [`spans_hash`]).
pub fn render_admit_record(
    spec: &TenantSpec,
    report: &AdmitReport,
    spans: u64,
    ledger: u64,
) -> String {
    format!(
        "{{\"t\":\"audit\",\"op\":\"admit\",\"tenant\":\"{}\",\"rung\":\"{}\",\"scale\":{},\
         \"replayed\":{},\"memo_hit\":{},\"rungs_tried\":{},\"latency_us\":{},\"ladder\":{},\
         \"spans_hash\":\"{spans:016x}\",\"ledger_hash\":\"{ledger:016x}\",\"spec\":{}}}",
        escape_json(&report.name),
        report.rung.label(),
        json_num(report.scale),
        report.replayed,
        report.memo_hit,
        report.rungs_tried,
        json_num(report.latency_us),
        render_ladder(&report.ladder_us),
        render_spec(spec)
    )
}

/// Renders the audit record for a rejected admission. `ledger` is the
/// (unchanged) post-rejection ledger fingerprint.
pub fn render_reject_record(spec: &TenantSpec, rej: &Rejection, ledger: u64) -> String {
    format!(
        "{{\"t\":\"audit\",\"op\":\"reject\",\"tenant\":\"{}\",\"rungs_tried\":{},\
         \"latency_us\":{},\"ladder\":{},\"detail\":\"{}\",\"ledger_hash\":\"{:016x}\",\
         \"spec\":{}}}",
        escape_json(&spec.name),
        rej.rungs_tried,
        json_num(rej.latency_us),
        render_ladder(&rej.ladder_us),
        escape_json(&rej.detail),
        ledger,
        render_spec(spec)
    )
}

/// Renders the audit record for an eviction. `ledger` is the post-eviction
/// ledger fingerprint.
pub fn render_evict_record(name: &str, latency_us: f64, ledger: u64) -> String {
    format!(
        "{{\"t\":\"audit\",\"op\":\"evict\",\"tenant\":\"{}\",\"latency_us\":{},\
         \"ledger_hash\":\"{:016x}\"}}",
        escape_json(name),
        json_num(latency_us),
        ledger
    )
}

/// What one audit line parses to.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditLine {
    /// The genesis `{"t":"meta",...}` line: free-form string pairs
    /// describing the engine configuration.
    Meta(BTreeMap<String, String>),
    /// One admit/evict/reject record.
    Record(AuditRecord),
}

/// A parsed audit record, ready for [`apply_record`].
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// Which mutation this records.
    pub op: AuditOp,
    /// Tenant name.
    pub tenant: String,
    /// Rung label (admit records; empty otherwise).
    pub rung: String,
    /// Capacity scale (admit records; 0 otherwise).
    pub scale: f64,
    /// Ladder rungs attempted (admit/reject records).
    pub rungs_tried: usize,
    /// Post-admission fingerprint of the tenant's own spans (admit only).
    pub spans_hash: Option<u64>,
    /// Post-operation ledger fingerprint.
    pub ledger_hash: u64,
    /// The tenant spec (admit/reject records).
    pub spec: Option<TenantSpec>,
}

/// The three journaled mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditOp {
    /// A successful admission.
    Admit,
    /// A successful eviction.
    Evict,
    /// A ladder-exhausted rejection.
    Reject,
}

/// Parses one journal line into an [`AuditLine`].
///
/// # Errors
///
/// A description of the malformation (also the torn-tail signal for
/// replay: a truncated final line fails here).
pub fn parse_audit_line(line: &str) -> Result<AuditLine, String> {
    let doc = parse(line.as_bytes()).map_err(|e| format!("not JSON: {e}"))?;
    let obj = doc.as_obj().ok_or("not a JSON object")?;
    let t = obj
        .get("t")
        .and_then(Json::as_str)
        .ok_or("missing string member \"t\"")?;
    match t {
        "meta" => {
            let mut pairs = BTreeMap::new();
            for (k, v) in obj {
                if k != "t" {
                    if let Some(s) = v.as_str() {
                        pairs.insert(k.clone(), s.to_string());
                    }
                }
            }
            Ok(AuditLine::Meta(pairs))
        }
        "audit" => parse_record(obj).map(AuditLine::Record),
        other => Err(format!("unknown line type \"{other}\"")),
    }
}

fn get_str<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string member \"{key}\""))
}

fn get_hash(obj: &BTreeMap<String, Json>, key: &str) -> Result<u64, String> {
    let s = get_str(obj, key)?;
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hash \"{key}\": {e}"))
}

fn parse_record(obj: &BTreeMap<String, Json>) -> Result<AuditRecord, String> {
    let op = match get_str(obj, "op")? {
        "admit" => AuditOp::Admit,
        "evict" => AuditOp::Evict,
        "reject" => AuditOp::Reject,
        other => return Err(format!("unknown audit op \"{other}\"")),
    };
    let tenant = get_str(obj, "tenant")?.to_string();
    let ledger_hash = get_hash(obj, "ledger_hash")?;
    let mut rec = AuditRecord {
        op,
        tenant,
        rung: String::new(),
        scale: 0.0,
        rungs_tried: 0,
        spans_hash: None,
        ledger_hash,
        spec: None,
    };
    if op != AuditOp::Evict {
        rec.rungs_tried = obj
            .get("rungs_tried")
            .and_then(Json::as_num)
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .ok_or("missing integer member \"rungs_tried\"")? as usize;
        rec.spec = Some(parse_spec_member(obj, &rec.tenant)?);
    }
    if op == AuditOp::Admit {
        rec.rung = get_str(obj, "rung")?.to_string();
        rec.scale = obj
            .get("scale")
            .and_then(Json::as_num)
            .ok_or("missing number member \"scale\"")?;
        rec.spans_hash = Some(get_hash(obj, "spans_hash")?);
    }
    Ok(rec)
}

fn parse_spec_member(obj: &BTreeMap<String, Json>, tenant: &str) -> Result<TenantSpec, String> {
    let spec = obj
        .get("spec")
        .and_then(Json::as_obj)
        .ok_or("missing object member \"spec\"")?;
    let tfg_text = spec
        .get("tfg")
        .and_then(Json::as_str)
        .ok_or("spec missing string \"tfg\"")?
        .to_string();
    let placement = match spec.get("placement") {
        Some(Json::Str(s)) => Placement::Strategy(s.clone()),
        Some(Json::Arr(items)) => {
            let mut nodes = Vec::with_capacity(items.len());
            for item in items {
                let n = item
                    .as_num()
                    .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                    .ok_or("spec placement nodes must be non-negative integers")?;
                nodes.push(n as usize);
            }
            Placement::Nodes(nodes)
        }
        _ => return Err("spec missing \"placement\"".into()),
    };
    let best_effort = spec
        .get("best_effort")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    Ok(TenantSpec {
        name: tenant.to_string(),
        tfg_text,
        placement,
        best_effort,
    })
}

/// Re-drives one audit record against `engine` and verifies the outcome
/// bit-for-bit: admits must land (same rung label, same scale bits, same
/// tenant-span and ledger fingerprints), evicts must succeed (same ledger
/// fingerprint), rejects must reject (same rungs tried, same ledger
/// fingerprint).
///
/// # Errors
///
/// A description of the first divergence between the journal and the
/// reconstructed engine.
pub fn apply_record(
    engine: &mut Engine,
    r: &AuditRecord,
    rec: &dyn Recorder,
) -> Result<(), String> {
    match r.op {
        AuditOp::Admit => {
            let spec = r.spec.as_ref().ok_or("admit record lost its spec")?;
            let report = engine
                .admit(spec, rec)
                .map_err(|e| format!("admit \"{}\" failed on replay: {e:?}", r.tenant))?;
            if report.rung.label() != r.rung {
                return Err(format!(
                    "admit \"{}\": rung diverged (journal {}, replay {})",
                    r.tenant,
                    r.rung,
                    report.rung.label()
                ));
            }
            if report.scale.to_bits() != r.scale.to_bits() {
                return Err(format!(
                    "admit \"{}\": scale diverged (journal {}, replay {})",
                    r.tenant, r.scale, report.scale
                ));
            }
            let spans = spans_hash(
                &engine
                    .tenant(&r.tenant)
                    .ok_or("admitted tenant vanished")?
                    .spans,
            );
            if Some(spans) != r.spans_hash {
                return Err(format!(
                    "admit \"{}\": tenant spans diverged (journal {:016x?}, replay {spans:016x})",
                    r.tenant, r.spans_hash
                ));
            }
        }
        AuditOp::Evict => {
            engine
                .evict(&r.tenant, rec)
                .map_err(|e| format!("evict \"{}\" failed on replay: {e}", r.tenant))?;
        }
        AuditOp::Reject => {
            let spec = r.spec.as_ref().ok_or("reject record lost its spec")?;
            match engine.admit(spec, rec) {
                Err(AdmitError::Infeasible(rej)) => {
                    if rej.rungs_tried != r.rungs_tried {
                        return Err(format!(
                            "reject \"{}\": rungs_tried diverged (journal {}, replay {})",
                            r.tenant, r.rungs_tried, rej.rungs_tried
                        ));
                    }
                }
                Ok(rep) => {
                    return Err(format!(
                        "reject \"{}\" admitted on replay (rung {})",
                        r.tenant,
                        rep.rung.label()
                    ));
                }
                Err(e) => {
                    return Err(format!(
                        "reject \"{}\" failed differently on replay: {e:?}",
                        r.tenant
                    ));
                }
            }
        }
    }
    let ledger = ledger_hash(engine);
    if ledger != r.ledger_hash {
        return Err(format!(
            "{:?} \"{}\": ledger diverged (journal {:016x}, replay {ledger:016x})",
            r.op, r.tenant, r.ledger_hash
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use sr_obs::NOOP;
    use sr_topology::Torus;

    fn engine() -> Engine {
        let topo = Torus::new(&[4, 4]).expect("torus");
        Engine::new(Box::new(topo), ServeConfig::default())
    }

    fn chain_spec(name: &str, nodes: &[usize]) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            tfg_text: "task a 100\ntask b 100\ntask c 100\n\
                       msg m0 a -> b 256\nmsg m1 b -> c 256\n"
                .to_string(),
            placement: Placement::Nodes(nodes.to_vec()),
            best_effort: false,
        }
    }

    #[test]
    fn records_round_trip_and_replay_verifies() {
        let mut eng = engine();
        let mut journal = Vec::new();
        for (name, nodes) in [("a", [0usize, 1, 2]), ("b", [4, 5, 6]), ("c", [8, 9, 10])] {
            let spec = chain_spec(name, &nodes);
            let report = eng.admit(&spec, &NOOP).expect("admits");
            let spans = spans_hash(&eng.tenant(name).unwrap().spans);
            journal.push(render_admit_record(
                &spec,
                &report,
                spans,
                ledger_hash(&eng),
            ));
        }
        eng.evict("b", &NOOP).expect("evicts");
        journal.push(render_evict_record("b", 0.0, ledger_hash(&eng)));
        // Re-drive a fresh engine and verify every record.
        let mut fresh = engine();
        for line in &journal {
            match parse_audit_line(line).expect("parses") {
                AuditLine::Record(r) => apply_record(&mut fresh, &r, &NOOP).expect("verifies"),
                AuditLine::Meta(_) => panic!("no meta written"),
            }
        }
        assert_eq!(ledger_hash(&fresh), ledger_hash(&eng));
    }

    #[test]
    fn divergence_is_detected_not_absorbed() {
        let mut eng = engine();
        let spec = chain_spec("a", &[0, 1, 2]);
        let report = eng.admit(&spec, &NOOP).expect("admits");
        let spans = spans_hash(&eng.tenant("a").unwrap().spans);
        let line = render_admit_record(&spec, &report, spans, ledger_hash(&eng));
        // Corrupt the ledger hash: replay must flag it.
        let bad = line.replace(
            &format!("\"ledger_hash\":\"{:016x}\"", ledger_hash(&eng)),
            "\"ledger_hash\":\"00000000deadbeef\"",
        );
        assert_ne!(line, bad);
        let AuditLine::Record(r) = parse_audit_line(&bad).expect("parses") else {
            panic!("not a record");
        };
        let mut fresh = engine();
        let err = apply_record(&mut fresh, &r, &NOOP).expect_err("diverges");
        assert!(err.contains("ledger diverged"), "unexpected error: {err}");
    }

    #[test]
    fn reject_records_replay_as_rejections() {
        let mut eng = engine();
        let mut hog = chain_spec("hog", &[0, 1]);
        hog.tfg_text = "task a 100\ntask b 100\nmsg m a -> b 2000000\n".into();
        let Err(AdmitError::Infeasible(rej)) = eng.admit(&hog, &NOOP) else {
            panic!("hog should be infeasible");
        };
        let line = render_reject_record(&hog, &rej, ledger_hash(&eng));
        let AuditLine::Record(r) = parse_audit_line(&line).expect("parses") else {
            panic!("not a record");
        };
        assert_eq!(r.op, AuditOp::Reject);
        let mut fresh = engine();
        apply_record(&mut fresh, &r, &NOOP).expect("reject replays as reject");
        assert_eq!(ledger_hash(&fresh), ledger_hash(&eng));
    }

    #[test]
    fn meta_lines_parse_as_meta() {
        match parse_audit_line(r#"{"t":"meta","kind":"serve-audit","topo":"torus:4x4"}"#) {
            Ok(AuditLine::Meta(pairs)) => {
                assert_eq!(pairs.get("kind").map(String::as_str), Some("serve-audit"));
                assert_eq!(pairs.get("topo").map(String::as_str), Some("torus:4x4"));
            }
            other => panic!("expected meta, got {other:?}"),
        }
        assert!(parse_audit_line("{\"t\":\"audit\",\"op\":\"admi").is_err());
        assert!(parse_audit_line("").is_err());
    }
}
