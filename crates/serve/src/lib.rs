//! `sr-serve` — the resident scheduler daemon: multi-tenant **online
//! admission** on top of the paper's compile pipeline.
//!
//! The batch pipeline (`sr-core`) answers "can this TFG be pipelined at
//! period τ?" once, offline. This crate keeps a compiled fabric *resident*
//! and answers the online question: "a new application just arrived — can
//! it be admitted **without perturbing anything already running**?" It
//! generalizes the fault-repair machinery (PR 4) from "links disappeared"
//! to "messages arrived/departed": admission re-runs path assignment and
//! interval allocation for the new tenant's messages only, with every
//! admitted tenant's link-time spans folded in as reserved capacity, so
//! admitted schedules stay pinned bit-identically — verified after every
//! mutation, not assumed.
//!
//! The crate splits into:
//!
//! * [`engine`] — [`Engine`]: the tenant table, the occupancy ledger, the
//!   degradation ladder (fast → adapted → rerouted → best-effort →
//!   reject), and the determinism memos;
//! * [`json`] — a total, non-panicking JSON parser for request bytes;
//! * [`error`] — the typed protocol error taxonomy ([`ErrorKind`]);
//! * [`protocol`] — request parsing and deterministic response rendering;
//! * [`daemon`] — [`Daemon`]: length-prefixed framing over stdio or a
//!   Unix socket, plus `CounterSnapshot`-delta Prometheus scrapes;
//! * [`http`] — the out-of-band exposition listener (`GET /metrics`,
//!   `/healthz`, `/tenants`) on its own thread, fed by published
//!   snapshots so it never blocks admission;
//! * [`audit`] — the append-only admission audit journal (JSONL through
//!   [`sr_obs::JournalWriter`] rotation) and its replay verifier:
//!   re-driving a fresh engine from the trail must reproduce the tenant
//!   table and ledger bit-identically.
//!
//! Everything on the *framed* protocol is std-only and deterministic:
//! identical request sequences produce byte-identical response sequences
//! (timestamps never enter the wire format), which is what makes
//! golden-transcript testing and the `serve` metrics gate possible.
//! Latency lives only in the out-of-band surfaces — the per-rung
//! histograms behind `/metrics` and the audit records' timing fields.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod daemon;
pub mod engine;
pub mod error;
pub mod http;
pub mod json;
pub mod protocol;

pub use audit::{
    apply_record, ledger_hash, parse_audit_line, spans_hash, AuditLine, AuditOp, AuditRecord,
};
pub use daemon::{read_frame, write_frame, Daemon, FrameRead, MAX_FRAME};
pub use engine::{
    spans_of_schedule, AdmitError, AdmitReport, AdmitRung, Engine, Grant, Placement, Rejection,
    ServeConfig, Tenant, TenantSpec,
};
pub use error::{ErrorKind, ServeError};
pub use http::OpsState;
pub use json::{parse, Json, JsonError};
pub use protocol::{parse_request, Request};
