//! The resident admission engine: a topology, a tenant table, and a
//! deterministic online-admission ladder built on the incremental-repair
//! primitives in `sr-core`.
//!
//! # Model
//!
//! Every tenant shares the daemon's frame: one period and one [`Timing`]
//! model. A tenant's canonical state is its **standalone compile** — the
//! schedule its TFG would get on an empty network — plus the absolute
//! link-time spans that schedule occupies. The daemon's only allocator
//! state is the **ledger**: the union of admitted tenants' spans per link,
//! rebuilt deterministically from the tenant table. Admission is the
//! fault-repair generalization from "links disappeared" to "messages
//! arrived": the new tenant's rows are (re-)derived against reserved
//! capacity, and **no admitted tenant's schedule is ever touched** — their
//! rows stay pinned bit-identically by construction, and
//! [`Engine::check_invariants`] verifies (rather than assumes) it after
//! every mutation.
//!
//! # Admission ladder
//!
//! 1. **fast** — the memoized standalone schedule's spans fit the ledger's
//!    idle time (guard-separated) verbatim: admit it untouched. This is
//!    the warm path: no LP, no routing, sub-millisecond.
//! 2. **adapted** — same paths, new placement:
//!    [`sr_core::reallocate_pinned`] re-derives the tenant's rows with the
//!    ledger folded in as reserved capacity, warm-starting from the
//!    tenant's [`AllocBasisCache`], and packs them into ledger idle time.
//! 3. **rerouted** — links whose ledger occupancy exceeds the busy
//!    threshold are masked ([`MaskedTopology`], exactly like dead links in
//!    repair) and [`sr_core::assign_paths_partial`] re-routes the tenant
//!    around the hot spots, then rung 2's allocation ladder runs on the
//!    new paths.
//! 4. **best-effort** — no real-time guarantee: each message gets one
//!    contiguous guard-separated span on all links of its standalone path,
//!    earliest-fit, all-or-nothing.
//! 5. **reject** — with a [`sr_core::Diagnosis`]-rendered explanation when
//!    the standalone compile itself failed, and the tenant-path ledger
//!    saturation otherwise.
//!
//! Eviction removes the tenant from the table; because the ledger is a
//! pure function of the table, the allocator state is bit-identical to
//! never having admitted the tenant. Per-tenant memos (standalone compile,
//! simplex bases, last admission result) survive eviction — they are
//! caches, not allocator state, and make evict-then-readmit reproduce the
//! original admission exactly when the ledger is unchanged.

use std::collections::{BTreeMap, BTreeSet};

use sr_core::{
    assign_paths_partial, compile_diagnosed, free_within, intersect, reallocate_pinned,
    AllocBasisCache, CompileConfig, FlowWorkspace, Schedule, EPS,
};
use sr_mapping::Allocation;
use sr_obs::{span_with, Recorder};
use sr_tfg::{from_text, MessageId, TaskFlowGraph, Timing};
use sr_topology::{FaultSet, LinkId, MaskedTopology, NodeId, Topology};

/// Per-link busy spans in absolute frame time, sorted and coalesced.
type Spans = BTreeMap<LinkId, Vec<(f64, f64)>>;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The shared frame period, µs. Every tenant compiles against it.
    pub period: f64,
    /// The shared platform timing model.
    pub timing: Timing,
    /// Standalone-compile configuration (window policy, guard time,
    /// feedback scales, parallelism, …). The guard time also separates
    /// tenants from each other on the ledger.
    pub compile: CompileConfig,
    /// Capacity scales for the adapt/re-route allocation ladder (rungs 2
    /// and 3). Empty means `[1.0]`.
    pub feedback_scales: Vec<f64>,
    /// A link is masked in the re-route rung when its ledger occupancy
    /// exceeds this fraction of the period.
    pub reroute_busy_threshold: f64,
    /// Per-tenant memo capacity (standalone compiles + simplex bases kept
    /// across evictions). Least-recently-used entries are dropped.
    pub memo_capacity: usize,
    /// Worker threads for batch-admission standalone compiles (`0` = one
    /// per hardware thread, `1` = serial).
    pub batch_threads: usize,
    /// Verify ledger invariants after every mutation (cross-tenant overlap
    /// freedom + span/schedule consistency). Cheap at daemon scale; admits
    /// that would violate pinning are rolled back and reported as internal
    /// errors instead of corrupting the ledger.
    pub paranoid: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            period: 100.0,
            timing: Timing::new(64.0, 10.0),
            compile: CompileConfig::default(),
            feedback_scales: vec![1.0, 0.9, 0.8],
            reroute_busy_threshold: 0.5,
            memo_capacity: 64,
            batch_threads: 1,
            paranoid: true,
        }
    }
}

/// Where a tenant may be placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Explicit node id per task, in task order.
    Nodes(Vec<usize>),
    /// A strategy name: `greedy`, `roundrobin`, or `scatter:<seed>`.
    Strategy(String),
}

/// One admission request: a named TFG (text format) plus placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Unique tenant name.
    pub name: String,
    /// The traffic-flow graph, in `sr_tfg::from_text` format.
    pub tfg_text: String,
    /// Task placement.
    pub placement: Placement,
    /// Allow the best-effort rung when real-time admission fails.
    pub best_effort: bool,
}

/// Which ladder rung admitted a tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitRung {
    /// Standalone schedule admitted verbatim.
    Fast,
    /// Same paths, rows re-derived against the ledger.
    Adapted,
    /// Re-routed around hot links, then re-derived.
    Rerouted,
    /// Best-effort grants only; no real-time guarantee.
    BestEffort,
}

impl AdmitRung {
    /// Stable lowercase label (wire format).
    pub fn label(self) -> &'static str {
        match self {
            AdmitRung::Fast => "fast",
            AdmitRung::Adapted => "adapted",
            AdmitRung::Rerouted => "rerouted",
            AdmitRung::BestEffort => "best_effort",
        }
    }
}

/// One best-effort grant: the message and its single transmission span.
#[derive(Debug, Clone, PartialEq)]
pub struct Grant {
    /// The granted message.
    pub message: MessageId,
    /// Span start, µs (equal to `end` for link-less messages).
    pub start: f64,
    /// Span end, µs.
    pub end: f64,
}

/// An admitted tenant.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Tenant name.
    pub name: String,
    /// Admission sequence number (monotonic across the engine's life).
    pub seq: u64,
    /// The tenant's TFG.
    pub tfg: TaskFlowGraph,
    /// Task placement, node per task.
    pub placement: Vec<NodeId>,
    /// The tenant's real-time schedule (`None` for best-effort tenants).
    pub schedule: Option<Schedule>,
    /// Best-effort grants (empty for real-time tenants).
    pub grants: Vec<Grant>,
    /// This tenant's link-time occupancy: sorted, coalesced spans per link.
    pub spans: BTreeMap<LinkId, Vec<(f64, f64)>>,
    /// Which rung admitted it.
    pub rung: AdmitRung,
    /// Capacity scale the admission succeeded at (1.0 for fast/best-effort).
    pub scale: f64,
}

/// What [`Engine::admit`] reports on success.
#[derive(Debug, Clone)]
pub struct AdmitReport {
    /// Tenant name.
    pub name: String,
    /// Which rung admitted it.
    pub rung: AdmitRung,
    /// Capacity scale of the successful allocation.
    pub scale: f64,
    /// Whether the standalone compile came from the per-tenant memo.
    pub memo_hit: bool,
    /// Whether the whole admission replayed a memoized result (identical
    /// spec against an identical ledger).
    pub replayed: bool,
    /// Messages in the tenant's TFG.
    pub messages: usize,
    /// Links the tenant occupies.
    pub links_used: usize,
    /// Ladder rungs attempted (0 for a replayed admission: the ladder
    /// never ran).
    pub rungs_tried: usize,
    /// Wall-clock admission latency, µs. 0 when the recorder is disabled —
    /// the no-op path takes no timestamps at all.
    pub latency_us: f64,
    /// Per-stage wall-clock breakdown in ladder order, µs (empty when the
    /// recorder is disabled). Never rendered on the wire — responses stay
    /// byte-deterministic; this feeds the audit journal and histograms.
    pub ladder_us: Vec<(&'static str, f64)>,
}

/// Why [`Engine::admit`] failed.
#[derive(Debug, Clone)]
pub enum AdmitError {
    /// A tenant with this name is already admitted.
    Duplicate(String),
    /// The spec does not parse or place.
    InvalidSpec(String),
    /// The ladder was exhausted.
    Infeasible(Rejection),
    /// An invariant check failed after install; the admission was rolled
    /// back.
    Internal(String),
}

/// Structured rejection detail for the `infeasible` error response.
#[derive(Debug, Clone, Default)]
pub struct Rejection {
    /// Human-readable summary.
    pub detail: String,
    /// Rendered [`sr_core::Diagnosis`] when the standalone compile itself
    /// failed (the PR-7 explainer's output).
    pub diagnosis: Option<String>,
    /// Ledger saturation on the tenant's path links: `(link, busy µs)`,
    /// busiest first.
    pub saturated: Vec<(LinkId, f64)>,
    /// Ladder rungs consumed before rejecting.
    pub rungs_tried: usize,
    /// Wall-clock latency of the rejected admission, µs (0 when the
    /// recorder is disabled).
    pub latency_us: f64,
    /// Per-stage wall-clock breakdown in ladder order, µs (empty when the
    /// recorder is disabled).
    pub ladder_us: Vec<(&'static str, f64)>,
}

/// Wall-clock per-stage lap timer for the admission ladder. Inert (no
/// timestamps taken) unless constructed enabled, so the no-op recorder
/// path stays free.
struct LadderTimer {
    last: Option<std::time::Instant>,
    laps: Vec<(&'static str, f64)>,
}

impl LadderTimer {
    fn new(enabled: bool) -> LadderTimer {
        LadderTimer {
            last: enabled.then(std::time::Instant::now),
            laps: Vec::new(),
        }
    }

    /// Records the time since the previous checkpoint under `label`.
    fn lap(&mut self, label: &'static str) {
        if let Some(t) = self.last {
            self.laps.push((label, t.elapsed().as_secs_f64() * 1e6));
            self.last = Some(std::time::Instant::now());
        }
    }
}

/// A memoized admission result, replayed verbatim when the same spec is
/// admitted against a bit-identical ledger.
#[derive(Debug, Clone)]
struct LastResult {
    ledger: BTreeMap<LinkId, Vec<(f64, f64)>>,
    tenant: Tenant,
    rung: AdmitRung,
    scale: f64,
}

/// Per-tenant memo: the standalone compile, warm simplex bases, and the
/// last admission result. Survives eviction (it is a cache, not allocator
/// state).
#[derive(Debug)]
struct MemoEntry {
    fingerprint: String,
    tfg: TaskFlowGraph,
    placement: Vec<NodeId>,
    schedule: Option<Schedule>,
    diagnosis: Option<String>,
    cache: AllocBasisCache,
    /// Flow-kernel workspace, the [`cache`](MemoEntry::cache) mirror for
    /// `AllocEngine::Flow` adapt rungs: buffers reused across this
    /// tenant's admissions.
    flow_ws: FlowWorkspace,
    last: Option<LastResult>,
    age: u64,
}

/// The resident admission engine. See the module docs for the model.
pub struct Engine {
    topo: Box<dyn Topology>,
    cfg: ServeConfig,
    tenants: BTreeMap<String, Tenant>,
    memo: BTreeMap<String, MemoEntry>,
    admit_seq: u64,
    memo_clock: u64,
}

impl Engine {
    /// A fresh engine owning `topo` with no tenants admitted.
    pub fn new(topo: Box<dyn Topology>, cfg: ServeConfig) -> Engine {
        Engine {
            topo,
            cfg,
            tenants: BTreeMap::new(),
            memo: BTreeMap::new(),
            admit_seq: 0,
            memo_clock: 0,
        }
    }

    /// The engine's topology.
    pub fn topo(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The admitted tenant with this name, if any.
    pub fn tenant(&self, name: &str) -> Option<&Tenant> {
        self.tenants.get(name)
    }

    /// All admitted tenants, in name order.
    pub fn tenants(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.values()
    }

    /// The ledger: every admitted tenant's occupancy merged, per link,
    /// sorted by span start. A pure function of the tenant table — this is
    /// the *entire* allocator state, which is what makes eviction restore
    /// it bit-identically to never having admitted the tenant.
    pub fn ledger(&self) -> BTreeMap<LinkId, Vec<(f64, f64)>> {
        let mut out: BTreeMap<LinkId, Vec<(f64, f64)>> = BTreeMap::new();
        for t in self.tenants.values() {
            for (&l, spans) in &t.spans {
                out.entry(l).or_default().extend(spans.iter().copied());
            }
        }
        for spans in out.values_mut() {
            spans.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        }
        out
    }

    /// Admits one tenant through the degradation ladder.
    ///
    /// When the recorder is enabled, the resolution latency lands in a
    /// per-outcome histogram (`serve.admit_latency.{replay,fast,adapted,
    /// rerouted,best_effort,reject}`) and the report/rejection carries the
    /// wall-clock total plus a per-stage ladder breakdown. The no-op
    /// recorder path takes no timestamps.
    ///
    /// # Errors
    ///
    /// [`AdmitError`] — duplicate name, invalid spec, ladder exhausted, or
    /// a rolled-back invariant violation.
    pub fn admit(
        &mut self,
        spec: &TenantSpec,
        rec: &dyn Recorder,
    ) -> Result<AdmitReport, AdmitError> {
        let t0 = rec.enabled().then(std::time::Instant::now);
        let mut timer = LadderTimer::new(t0.is_some());
        let mut result = self.admit_inner(spec, rec, &mut timer);
        if let Some(t0) = t0 {
            let us = t0.elapsed().as_secs_f64() * 1e6;
            let metric = match &result {
                Ok(r) if r.replayed => Some("serve.admit_latency.replay"),
                Ok(r) => Some(match r.rung {
                    AdmitRung::Fast => "serve.admit_latency.fast",
                    AdmitRung::Adapted => "serve.admit_latency.adapted",
                    AdmitRung::Rerouted => "serve.admit_latency.rerouted",
                    AdmitRung::BestEffort => "serve.admit_latency.best_effort",
                }),
                Err(AdmitError::Infeasible(_)) => Some("serve.admit_latency.reject"),
                Err(_) => None,
            };
            if let Some(m) = metric {
                rec.observe(m, us);
            }
            match &mut result {
                Ok(r) => {
                    r.latency_us = us;
                    r.ladder_us = std::mem::take(&mut timer.laps);
                }
                Err(AdmitError::Infeasible(rej)) => {
                    rej.latency_us = us;
                    rej.ladder_us = std::mem::take(&mut timer.laps);
                }
                Err(_) => {}
            }
        }
        result
    }

    /// The admission ladder body; `admit` wraps it with outcome timing.
    fn admit_inner(
        &mut self,
        spec: &TenantSpec,
        rec: &dyn Recorder,
        timer: &mut LadderTimer,
    ) -> Result<AdmitReport, AdmitError> {
        let span = span_with(rec, "serve.admit", || spec.name.clone());
        rec.add("serve.admit", 1);
        if spec.name.is_empty() {
            return Err(AdmitError::InvalidSpec("tenant name is empty".into()));
        }
        if self.tenants.contains_key(&spec.name) {
            return Err(AdmitError::Duplicate(spec.name.clone()));
        }
        let memo_hit = self.memoize(spec, rec)?;
        rec.add(
            if memo_hit {
                "serve.admit.memo_hits"
            } else {
                "serve.admit.memo_misses"
            },
            1,
        );
        timer.lap("compile");
        let ledger = self.ledger();
        let guard = self.cfg.compile.guard_time;

        // Replay: identical spec against a bit-identical ledger reproduces
        // the previous admission exactly (the evict-then-readmit
        // determinism guarantee).
        let entry = self.memo.get(&spec.name).expect("memoized above");
        if let Some(last) = &entry.last {
            if last.ledger == ledger {
                rec.add("serve.admit.replayed", 1);
                let mut tenant = last.tenant.clone();
                let (rung, scale) = (last.rung, last.scale);
                tenant.seq = self.admit_seq;
                span.annotate("rung", 0.0);
                timer.lap("replay");
                return self.install(tenant, rung, scale, memo_hit, true, rec);
            }
        }

        // Rung 1: fast path — the standalone schedule fits verbatim.
        if let Some(sched) = entry.schedule.clone() {
            let spans = spans_of_schedule(&sched);
            let fits_verbatim = fits(&spans, &ledger, guard);
            timer.lap("fast");
            if fits_verbatim {
                rec.add("serve.admit.fast", 1);
                let tenant = Tenant {
                    name: spec.name.clone(),
                    seq: self.admit_seq,
                    tfg: entry.tfg.clone(),
                    placement: entry.placement.clone(),
                    schedule: Some(sched),
                    grants: Vec::new(),
                    spans,
                    rung: AdmitRung::Fast,
                    scale: 1.0,
                };
                return self.install(tenant, AdmitRung::Fast, 1.0, memo_hit, false, rec);
            }

            // Rung 2: adapt — same paths, rows re-derived against the
            // ledger's reserved capacity, packed into its idle time.
            rec.add("serve.admit.adapt_attempts", 1);
            let affected = linked_messages(&sched);
            let scales = self.cfg.feedback_scales.clone();
            let mut attempts = Vec::new();
            let entry = self.memo.get_mut(&spec.name).expect("memoized above");
            let adapted = reallocate_pinned(
                &sched,
                sched.assignment(),
                &affected,
                &BTreeSet::new(),
                &ledger,
                &scales,
                self.cfg.compile.alloc_engine,
                &mut entry.cache,
                &mut entry.flow_ws,
                "serve",
                rec,
                &mut attempts,
            );
            timer.lap("adapt");
            if let Some(rp) = adapted {
                rec.add("serve.admit.adapted", 1);
                let patched = sched.patched(
                    sched.assignment().clone(),
                    rp.allocation,
                    rp.interval_schedules,
                    self.topo.as_ref(),
                );
                let spans = spans_of_schedule(&patched);
                let tenant = Tenant {
                    name: spec.name.clone(),
                    seq: self.admit_seq,
                    tfg: entry.tfg.clone(),
                    placement: entry.placement.clone(),
                    schedule: Some(patched),
                    grants: Vec::new(),
                    spans,
                    rung: AdmitRung::Adapted,
                    scale: rp.scale,
                };
                return self.install(tenant, AdmitRung::Adapted, rp.scale, memo_hit, false, rec);
            }

            // Rung 3: re-route around hot links, then re-derive.
            let rerouted = self.try_reroute(&sched, &ledger, rec);
            timer.lap("reroute");
            if let Some((rerouted, scale)) = rerouted {
                rec.add("serve.admit.rerouted", 1);
                let spans = spans_of_schedule(&rerouted);
                let entry = self.memo.get(&spec.name).expect("memoized above");
                let tenant = Tenant {
                    name: spec.name.clone(),
                    seq: self.admit_seq,
                    tfg: entry.tfg.clone(),
                    placement: entry.placement.clone(),
                    schedule: Some(rerouted),
                    grants: Vec::new(),
                    spans,
                    rung: AdmitRung::Rerouted,
                    scale,
                };
                return self.install(tenant, AdmitRung::Rerouted, scale, memo_hit, false, rec);
            }
        }

        // Rung 4: best-effort (single guard-separated span per message on
        // the standalone paths, no real-time guarantee).
        let entry = self.memo.get(&spec.name).expect("memoized above");
        if spec.best_effort {
            if let Some(sched) = &entry.schedule {
                let grants = self.try_best_effort(sched, &ledger);
                timer.lap("best_effort");
                if let Some((grants, spans)) = grants {
                    rec.add("serve.admit.best_effort", 1);
                    let tenant = Tenant {
                        name: spec.name.clone(),
                        seq: self.admit_seq,
                        tfg: entry.tfg.clone(),
                        placement: entry.placement.clone(),
                        schedule: None,
                        grants,
                        spans,
                        rung: AdmitRung::BestEffort,
                        scale: 1.0,
                    };
                    return self.install(tenant, AdmitRung::BestEffort, 1.0, memo_hit, false, rec);
                }
            }
        }

        // Rung 5: reject, with the best explanation available.
        timer.lap("reject");
        rec.add("serve.admit.rejected", 1);
        let entry = self.memo.get(&spec.name).expect("memoized above");
        let mut rejection = Rejection::default();
        if let Some(diag) = &entry.diagnosis {
            rejection.detail = format!(
                "tenant \"{}\" does not compile standalone at period {}",
                spec.name, self.cfg.period
            );
            rejection.diagnosis = Some(diag.clone());
            rejection.rungs_tried = 1;
        } else {
            rejection.detail = format!(
                "tenant \"{}\" cannot be admitted against the current ledger",
                spec.name
            );
            rejection.rungs_tried = if spec.best_effort { 4 } else { 3 };
            if let Some(sched) = &entry.schedule {
                rejection.saturated = self.saturation(sched, &ledger);
            }
        }
        Err(AdmitError::Infeasible(rejection))
    }

    /// Admits a batch: standalone compiles for memo misses run through the
    /// `sr-par` pool concurrently (they are pure), then the admissions
    /// themselves run serially in request order — so the outcome is
    /// deterministic and identical to admitting one by one.
    pub fn admit_batch(
        &mut self,
        specs: &[TenantSpec],
        rec: &dyn Recorder,
    ) -> Vec<Result<AdmitReport, AdmitError>> {
        rec.add("serve.batch", 1);
        rec.add("serve.batch.tenants", specs.len() as u64);
        // Precompile memo misses in parallel. Duplicate names within the
        // batch are resolved by the serial pass below.
        let mut misses: Vec<(String, TaskFlowGraph, Allocation, String)> = Vec::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for spec in specs {
            if !seen.insert(spec.name.clone()) || self.tenants.contains_key(&spec.name) {
                continue;
            }
            let Ok((tfg, alloc, fingerprint)) = self.parse_spec(spec) else {
                continue; // the serial pass reports the error
            };
            let fresh = self
                .memo
                .get(&spec.name)
                .is_none_or(|e| e.fingerprint != fingerprint);
            if fresh {
                misses.push((spec.name.clone(), tfg, alloc, fingerprint));
            }
        }
        let topo = self.topo.as_ref();
        let cfg = &self.cfg;
        let compiled = sr_par::par_map(&misses, cfg.batch_threads, |(_, tfg, alloc, _)| {
            let (result, diag) =
                compile_diagnosed(topo, tfg, alloc, &cfg.timing, cfg.period, &cfg.compile, rec);
            match result {
                Ok(s) => (Some(s), None),
                Err(_) => (None, Some(diag.render_text(topo, tfg))),
            }
        });
        let clock = self.memo_clock;
        for (i, (name, tfg, alloc, fingerprint)) in misses.into_iter().enumerate() {
            let (schedule, diagnosis) = compiled[i].clone();
            let placement = alloc.placement().to_vec();
            self.memo.insert(
                name,
                MemoEntry {
                    fingerprint,
                    tfg,
                    placement,
                    schedule,
                    diagnosis,
                    cache: AllocBasisCache::new(),
                    flow_ws: FlowWorkspace::new(),
                    last: None,
                    age: clock,
                },
            );
        }
        self.trim_memo();
        specs.iter().map(|s| self.admit(s, rec)).collect()
    }

    /// Evicts a tenant, restoring the ledger to a state bit-identical to
    /// never having admitted it (the ledger is derived from the tenant
    /// table alone). The tenant's memos survive for cheap re-admission.
    ///
    /// # Errors
    ///
    /// The tenant name, when no such tenant is admitted.
    pub fn evict(&mut self, name: &str, rec: &dyn Recorder) -> Result<(), String> {
        let t0 = rec.enabled().then(std::time::Instant::now);
        let _span = span_with(rec, "serve.evict", || name.to_string());
        if self.tenants.remove(name).is_none() {
            return Err(format!("no tenant named \"{name}\""));
        }
        rec.add("serve.evict", 1);
        if self.cfg.paranoid {
            if let Err(e) = self.check_invariants() {
                // Unreachable unless a Tenant was mutated externally;
                // surface loudly but do not panic (protocol contract).
                rec.add("serve.invariant_violations", 1);
                return Err(format!("post-eviction invariant violation: {e}"));
            }
        }
        if let Some(t0) = t0 {
            rec.observe("serve.evict_latency", t0.elapsed().as_secs_f64() * 1e6);
        }
        Ok(())
    }

    /// Verifies the pinning contract over the whole table: every tenant's
    /// stored spans match its stored schedule/grants exactly, and no two
    /// tenants' spans overlap on any link. `Err` describes the first
    /// violation found.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Spans must be derivable from the stored schedule — if a stored
        // schedule had been perturbed by a later admission, this is where
        // it would surface. (Best-effort tenants carry spans in their
        // grants; the cross-tenant sweep below still covers them.)
        for t in self.tenants.values() {
            if let Some(s) = &t.schedule {
                if spans_of_schedule(s) != t.spans {
                    return Err(format!(
                        "tenant \"{}\" spans diverge from its schedule",
                        t.name
                    ));
                }
            }
        }
        // Cross-tenant overlap freedom per link.
        let mut per_link: BTreeMap<LinkId, Vec<(f64, f64, &str)>> = BTreeMap::new();
        for t in self.tenants.values() {
            for (&l, spans) in &t.spans {
                let e = per_link.entry(l).or_default();
                for &(s, end) in spans {
                    e.push((s, end, t.name.as_str()));
                }
            }
        }
        for (l, spans) in per_link.iter_mut() {
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                let (_, e0, n0) = w[0];
                let (s1, _, n1) = w[1];
                if n0 != n1 && s1 < e0 - EPS {
                    return Err(format!(
                        "tenants \"{n0}\" and \"{n1}\" overlap on link {l} ({s1:.3} < {e0:.3})"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Parses and places a spec (no compile). Returns the TFG, the
    /// placement, and the memo fingerprint.
    fn parse_spec(&self, spec: &TenantSpec) -> Result<(TaskFlowGraph, Allocation, String), String> {
        let tfg = from_text(&spec.tfg_text).map_err(|e| format!("tfg: {e}"))?;
        let alloc = match &spec.placement {
            Placement::Nodes(nodes) => {
                let placement: Vec<NodeId> = nodes.iter().map(|&n| NodeId(n)).collect();
                Allocation::new(placement, &tfg, self.topo.as_ref())
                    .map_err(|e| format!("placement: {e}"))?
            }
            Placement::Strategy(s) => match s.as_str() {
                "greedy" => sr_mapping::greedy(&tfg, self.topo.as_ref()),
                "roundrobin" => sr_mapping::round_robin(&tfg, self.topo.as_ref()),
                other => match other.strip_prefix("scatter:").map(str::parse::<u64>) {
                    Some(Ok(seed)) => sr_mapping::random_distinct(&tfg, self.topo.as_ref(), seed)
                        .map_err(|e| format!("placement: {e}"))?,
                    _ => {
                        return Err(format!(
                            "unknown placement strategy \"{other}\" \
                             (expected greedy, roundrobin, or scatter:<seed>)"
                        ))
                    }
                },
            },
        };
        let placement_desc: Vec<String> =
            alloc.placement().iter().map(|n| n.0.to_string()).collect();
        let fingerprint = format!("{}\u{0}{}", spec.tfg_text, placement_desc.join(","));
        Ok((tfg, alloc, fingerprint))
    }

    /// Ensures the per-tenant memo holds this spec's standalone compile.
    /// Returns whether it was already there (memo hit).
    fn memoize(&mut self, spec: &TenantSpec, rec: &dyn Recorder) -> Result<bool, AdmitError> {
        let (tfg, alloc, fingerprint) = self.parse_spec(spec).map_err(AdmitError::InvalidSpec)?;
        self.memo_clock += 1;
        if let Some(entry) = self.memo.get_mut(&spec.name) {
            if entry.fingerprint == fingerprint {
                entry.age = self.memo_clock;
                return Ok(true);
            }
        }
        let _span = span_with(rec, "serve.compile_standalone", || spec.name.clone());
        let (result, diag) = compile_diagnosed(
            self.topo.as_ref(),
            &tfg,
            &alloc,
            &self.cfg.timing,
            self.cfg.period,
            &self.cfg.compile,
            rec,
        );
        let (schedule, diagnosis) = match result {
            Ok(s) => (Some(s), None),
            Err(_) => (None, Some(diag.render_text(self.topo.as_ref(), &tfg))),
        };
        let placement = alloc.placement().to_vec();
        self.memo.insert(
            spec.name.clone(),
            MemoEntry {
                fingerprint,
                tfg,
                placement,
                schedule,
                diagnosis,
                cache: AllocBasisCache::new(),
                flow_ws: FlowWorkspace::new(),
                last: None,
                age: self.memo_clock,
            },
        );
        self.trim_memo();
        Ok(false)
    }

    /// Drops least-recently-used memo entries beyond the configured
    /// capacity. Entries of currently admitted tenants are kept.
    fn trim_memo(&mut self) {
        while self.memo.len() > self.cfg.memo_capacity.max(1) {
            let victim = self
                .memo
                .iter()
                .filter(|(name, _)| !self.tenants.contains_key(*name))
                .min_by_key(|(_, e)| e.age)
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    self.memo.remove(&name);
                }
                None => break,
            }
        }
    }

    /// Commits an admission: stores the tenant, verifies the pinning
    /// contract (rolling back on violation), memoizes the result for
    /// replay, and builds the report.
    fn install(
        &mut self,
        tenant: Tenant,
        rung: AdmitRung,
        scale: f64,
        memo_hit: bool,
        replayed: bool,
        rec: &dyn Recorder,
    ) -> Result<AdmitReport, AdmitError> {
        let name = tenant.name.clone();
        let ledger_before = self.ledger();
        let rungs_tried = if replayed {
            0
        } else {
            match rung {
                AdmitRung::Fast => 1,
                AdmitRung::Adapted => 2,
                AdmitRung::Rerouted => 3,
                AdmitRung::BestEffort => 4,
            }
        };
        let report = AdmitReport {
            name: name.clone(),
            rung,
            scale,
            memo_hit,
            replayed,
            messages: tenant.tfg.num_messages(),
            links_used: tenant.spans.len(),
            rungs_tried,
            latency_us: 0.0,
            ladder_us: Vec::new(),
        };
        let stored = tenant.clone();
        self.tenants.insert(name.clone(), tenant);
        self.admit_seq += 1;
        if self.cfg.paranoid {
            if let Err(e) = self.check_invariants() {
                self.tenants.remove(&name);
                self.admit_seq -= 1;
                rec.add("serve.invariant_violations", 1);
                return Err(AdmitError::Internal(format!(
                    "admission of \"{name}\" violated the pinning contract and was rolled back: {e}"
                )));
            }
        }
        if let Some(entry) = self.memo.get_mut(&name) {
            entry.last = Some(LastResult {
                ledger: ledger_before,
                tenant: stored,
                rung,
                scale,
            });
        }
        Ok(report)
    }

    /// The re-route rung: mask links whose ledger occupancy exceeds the
    /// busy threshold, re-route the tenant around them with
    /// `assign_paths_partial` (standalone paths as the frozen base), then
    /// run the reserved allocation ladder on the new paths.
    fn try_reroute(
        &mut self,
        sched: &Schedule,
        ledger: &BTreeMap<LinkId, Vec<(f64, f64)>>,
        rec: &dyn Recorder,
    ) -> Option<(Schedule, f64)> {
        rec.add("serve.admit.reroute_attempts", 1);
        let period = self.cfg.period;
        let mut faults = FaultSet::new();
        let mut masked_any = false;
        for (&l, spans) in ledger {
            let busy: f64 = spans.iter().map(|&(s, e)| e - s).sum();
            if busy / period >= self.cfg.reroute_busy_threshold {
                faults = faults.fail_link(l);
                masked_any = true;
            }
        }
        if !masked_any {
            return None; // nothing to route around
        }
        let masked = MaskedTopology::new(self.topo.as_ref(), faults);
        let affected = linked_messages(sched);
        // Panic-freedom precheck (protocol contract): partial assignment
        // requires a route for every affected message.
        for &m in &affected {
            let p = sched.assignment().path(m);
            if !masked.connects(p.source(), p.destination()) {
                rec.add("serve.admit.reroute_disconnected", 1);
                return None;
            }
        }
        let outcome = assign_paths_partial(
            &masked,
            sched.bounds(),
            sched.intervals(),
            sched.activity(),
            sched.assignment(),
            &affected,
            &self.cfg.compile.assign_paths,
        );
        rec.add("serve.assign_paths.restarts", outcome.restarts as u64);
        if outcome.utilization.effective_peak() > 1.0 + EPS {
            rec.add("serve.utilization_exceeded", 1);
            return None;
        }
        let scales = self.cfg.feedback_scales.clone();
        // Fresh cache: the re-routed assignment has different subsets than
        // the standalone one the per-tenant cache was built for.
        let mut cache = AllocBasisCache::new();
        let mut flow_ws = FlowWorkspace::new();
        let mut attempts = Vec::new();
        let rp = reallocate_pinned(
            sched,
            &outcome.assignment,
            &affected,
            &BTreeSet::new(),
            ledger,
            &scales,
            self.cfg.compile.alloc_engine,
            &mut cache,
            &mut flow_ws,
            "serve",
            rec,
            &mut attempts,
        )?;
        Some((
            sched.patched(
                outcome.assignment.clone(),
                rp.allocation,
                rp.interval_schedules,
                self.topo.as_ref(),
            ),
            rp.scale,
        ))
    }

    /// The best-effort rung: one contiguous guard-separated span per
    /// message on all links of its standalone path, earliest-fit into the
    /// ledger's idle time, all-or-nothing.
    fn try_best_effort(&self, sched: &Schedule, ledger: &Spans) -> Option<(Vec<Grant>, Spans)> {
        let guard = self.cfg.compile.guard_time;
        let period = self.cfg.period;
        let mut busy: BTreeMap<LinkId, Vec<(f64, f64)>> = ledger.clone();
        let mut grants = Vec::new();
        let mut spans: BTreeMap<LinkId, Vec<(f64, f64)>> = BTreeMap::new();
        for i in 0..sched.assignment().len() {
            let m = MessageId(i);
            let links = sched.assignment().links(m).to_vec();
            let need = sched.bounds().window(m).duration();
            if links.is_empty() {
                grants.push(Grant {
                    message: m,
                    start: 0.0,
                    end: 0.0,
                });
                continue;
            }
            let mut free = vec![(0.0, period)];
            for &l in &links {
                let lb = busy.entry(l).or_default();
                free = intersect(&free, &free_within(lb, 0.0, period, guard));
                if free.is_empty() {
                    break;
                }
            }
            let slot = free.iter().find(|&&(s, e)| e - s >= need - EPS)?;
            let s = slot.0;
            grants.push(Grant {
                message: m,
                start: s,
                end: s + need,
            });
            for &l in &links {
                busy.entry(l).or_default().push((s, s + need));
                spans.entry(l).or_default().push((s, s + need));
            }
        }
        for s in spans.values_mut() {
            s.sort_by(|a, b| a.0.total_cmp(&b.0));
            coalesce(s);
        }
        Some((grants, spans))
    }

    /// Ledger saturation on the tenant's path links, busiest first — the
    /// rejection response's bottleneck list.
    fn saturation(
        &self,
        sched: &Schedule,
        ledger: &BTreeMap<LinkId, Vec<(f64, f64)>>,
    ) -> Vec<(LinkId, f64)> {
        let mut links: BTreeSet<LinkId> = BTreeSet::new();
        for i in 0..sched.assignment().len() {
            links.extend(sched.assignment().links(MessageId(i)).iter().copied());
        }
        let mut out: Vec<(LinkId, f64)> = links
            .into_iter()
            .map(|l| {
                let busy: f64 = ledger
                    .get(&l)
                    .map(|spans| spans.iter().map(|&(s, e)| e - s).sum())
                    .unwrap_or(0.0);
                (l, busy)
            })
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(10);
        out
    }
}

/// The per-link occupancy of a schedule: for every segment, its span on
/// every link of the message's path (the paper's circuit model — a slice
/// occupies all links of the path simultaneously). Sorted and coalesced.
pub fn spans_of_schedule(sched: &Schedule) -> BTreeMap<LinkId, Vec<(f64, f64)>> {
    let mut out: BTreeMap<LinkId, Vec<(f64, f64)>> = BTreeMap::new();
    for seg in sched.segments() {
        for &l in sched.assignment().links(seg.message) {
            out.entry(l).or_default().push((seg.start, seg.end));
        }
    }
    for spans in out.values_mut() {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        coalesce(spans);
    }
    out
}

/// Messages that actually traverse links (trivial/local ones carry no
/// network traffic and take no allocation row).
fn linked_messages(sched: &Schedule) -> Vec<MessageId> {
    (0..sched.assignment().len())
        .map(MessageId)
        .filter(|&m| !sched.assignment().links(m).is_empty())
        .collect()
}

/// Merges overlapping or abutting sorted spans in place.
fn coalesce(spans: &mut Vec<(f64, f64)>) {
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(spans.len());
    for &(s, e) in spans.iter() {
        match out.last_mut() {
            Some(last) if s <= last.1 + EPS => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    *spans = out;
}

/// Whether `spans` fit into the idle time `ledger` leaves, every span at
/// least `guard` away from every ledger span on the same link.
fn fits(
    spans: &BTreeMap<LinkId, Vec<(f64, f64)>>,
    ledger: &BTreeMap<LinkId, Vec<(f64, f64)>>,
    guard: f64,
) -> bool {
    for (l, mine) in spans {
        let Some(theirs) = ledger.get(l) else {
            continue;
        };
        for &(s, e) in mine {
            for &(bs, be) in theirs {
                if s < be + guard - EPS && e > bs - guard + EPS {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_obs::NOOP;
    use sr_topology::Torus;

    fn engine() -> Engine {
        let topo = Torus::new(&[4, 4]).expect("torus");
        Engine::new(Box::new(topo), ServeConfig::default())
    }

    fn chain_spec(name: &str, nodes: &[usize]) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            tfg_text: "task a 100\ntask b 100\ntask c 100\n\
                       msg m0 a -> b 256\nmsg m1 b -> c 256\n"
                .to_string(),
            placement: Placement::Nodes(nodes.to_vec()),
            best_effort: false,
        }
    }

    #[test]
    fn admit_evict_roundtrip_restores_the_ledger() {
        let mut eng = engine();
        let empty = eng.ledger();
        let report = eng
            .admit(&chain_spec("t1", &[0, 1, 2]), &NOOP)
            .expect("admits");
        assert_eq!(report.rung, AdmitRung::Fast);
        assert!(!eng.ledger().is_empty());
        eng.evict("t1", &NOOP).expect("evicts");
        assert_eq!(eng.ledger(), empty);
        assert!(eng.tenant("t1").is_none());
    }

    #[test]
    fn duplicate_and_unknown_are_typed() {
        let mut eng = engine();
        eng.admit(&chain_spec("t1", &[0, 1, 2]), &NOOP)
            .expect("admits");
        assert!(matches!(
            eng.admit(&chain_spec("t1", &[0, 1, 2]), &NOOP),
            Err(AdmitError::Duplicate(_))
        ));
        assert!(eng.evict("nope", &NOOP).is_err());
    }

    #[test]
    fn invalid_spec_is_typed_not_a_panic() {
        let mut eng = engine();
        let mut bad = chain_spec("t", &[0, 1, 2]);
        bad.tfg_text = "task only-nonsense".into();
        assert!(matches!(
            eng.admit(&bad, &NOOP),
            Err(AdmitError::InvalidSpec(_))
        ));
        let mut bad2 = chain_spec("t", &[0, 1]);
        bad2.placement = Placement::Nodes(vec![0, 1]); // wrong length
        assert!(matches!(
            eng.admit(&bad2, &NOOP),
            Err(AdmitError::InvalidSpec(_))
        ));
        let mut bad3 = chain_spec("t", &[0, 1, 2]);
        bad3.placement = Placement::Strategy("voodoo".into());
        assert!(matches!(
            eng.admit(&bad3, &NOOP),
            Err(AdmitError::InvalidSpec(_))
        ));
    }

    #[test]
    fn fast_path_rows_match_standalone_compile() {
        let mut eng = engine();
        eng.admit(&chain_spec("t1", &[0, 1, 2]), &NOOP).expect("t1");
        eng.admit(&chain_spec("t2", &[5, 6, 7]), &NOOP).expect("t2");
        // Each tenant's stored schedule is its standalone compile verbatim
        // (fast path), so rows must match a fresh engine's single admit.
        let mut fresh = engine();
        fresh
            .admit(&chain_spec("t2", &[5, 6, 7]), &NOOP)
            .expect("standalone");
        let served = eng.tenant("t2").unwrap().schedule.as_ref().unwrap().clone();
        let standalone = fresh
            .tenant("t2")
            .unwrap()
            .schedule
            .as_ref()
            .unwrap()
            .clone();
        assert_eq!(served.segments(), standalone.segments());
        for i in 0..served.assignment().len() {
            let m = MessageId(i);
            assert_eq!(served.allocation().row(m), standalone.allocation().row(m));
        }
    }

    #[test]
    fn evict_then_readmit_replays_exactly() {
        let mut eng = engine();
        eng.admit(&chain_spec("t1", &[0, 1, 2]), &NOOP).expect("t1");
        eng.admit(&chain_spec("t2", &[5, 6, 7]), &NOOP).expect("t2");
        let before = eng.tenant("t2").unwrap().clone();
        eng.evict("t2", &NOOP).expect("evict");
        let rec = sr_obs::MetricsRecorder::new();
        let report = eng
            .admit(&chain_spec("t2", &[5, 6, 7]), &rec)
            .expect("readmit");
        assert!(report.replayed);
        assert_eq!(rec.counters()["serve.admit.replayed"], 1);
        let after = eng.tenant("t2").unwrap();
        assert_eq!(before.spans, after.spans);
        assert_eq!(
            before.schedule.as_ref().unwrap().segments(),
            after.schedule.as_ref().unwrap().segments()
        );
    }

    #[test]
    fn batch_matches_serial_admission() {
        let specs = vec![
            chain_spec("a", &[0, 1, 2]),
            chain_spec("b", &[4, 5, 6]),
            chain_spec("c", &[8, 9, 10]),
        ];
        let mut batch = engine();
        let cfg = ServeConfig {
            batch_threads: 4,
            ..ServeConfig::default()
        };
        let topo = Torus::new(&[4, 4]).expect("torus");
        let mut batch_par = Engine::new(Box::new(topo), cfg);
        let results = batch_par.admit_batch(&specs, &NOOP);
        assert!(results.iter().all(Result::is_ok));
        for spec in &specs {
            batch.admit(spec, &NOOP).expect("serial admits");
        }
        for spec in &specs {
            let a = batch.tenant(&spec.name).unwrap();
            let b = batch_par.tenant(&spec.name).unwrap();
            assert_eq!(a.spans, b.spans, "batch direction changed {}", spec.name);
            assert_eq!(
                a.schedule.as_ref().unwrap().segments(),
                b.schedule.as_ref().unwrap().segments()
            );
        }
    }

    #[test]
    fn admission_latency_lands_in_per_rung_histograms() {
        let mut eng = engine();
        let rec = sr_obs::MetricsRecorder::new();
        let report = eng.admit(&chain_spec("t1", &[0, 1, 2]), &rec).expect("t1");
        assert_eq!(report.rungs_tried, 1);
        assert!(report.latency_us > 0.0);
        assert!(
            report.ladder_us.iter().any(|(s, _)| *s == "fast"),
            "ladder breakdown names the winning stage: {:?}",
            report.ladder_us
        );
        let fast = rec
            .histogram_summary("serve.admit_latency.fast")
            .expect("fast histogram recorded");
        assert_eq!(fast.count, 1);
        // Evict then readmit: the replay outcome gets its own histogram,
        // and rungs_tried reports 0 (the ladder never ran).
        eng.evict("t1", &rec).expect("evict");
        assert_eq!(
            rec.histogram_summary("serve.evict_latency").unwrap().count,
            1
        );
        let replay = eng
            .admit(&chain_spec("t1", &[0, 1, 2]), &rec)
            .expect("replay");
        assert!(replay.replayed);
        assert_eq!(replay.rungs_tried, 0);
        assert_eq!(
            rec.histogram_summary("serve.admit_latency.replay")
                .unwrap()
                .count,
            1
        );
        // A rejection lands in the reject histogram and carries timing.
        let mut hog = chain_spec("big", &[0, 1, 2]);
        hog.tfg_text = "task a 100\ntask b 100\nmsg m a -> b 2000000\n".into();
        hog.placement = Placement::Nodes(vec![0, 1]);
        match eng.admit(&hog, &rec) {
            Err(AdmitError::Infeasible(rej)) => {
                assert!(rej.latency_us > 0.0);
                assert!(!rej.ladder_us.is_empty());
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
        assert_eq!(
            rec.histogram_summary("serve.admit_latency.reject")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn noop_recorder_path_takes_no_timestamps() {
        let mut eng = engine();
        let report = eng.admit(&chain_spec("t1", &[0, 1, 2]), &NOOP).expect("t1");
        assert_eq!(report.latency_us, 0.0);
        assert!(report.ladder_us.is_empty());
        assert_eq!(report.rungs_tried, 1);
    }

    #[test]
    fn contended_link_forces_a_non_fast_rung_and_pins_the_rest() {
        // Two tenants with identical placement share every path link; the
        // second cannot take the fast path yet must not perturb the first.
        let mut eng = engine();
        eng.admit(&chain_spec("t1", &[0, 1, 2]), &NOOP).expect("t1");
        let t1_before = eng.tenant("t1").unwrap().clone();
        let second = eng
            .admit(&chain_spec("t2", &[0, 1, 2]), &NOOP)
            .expect("t2 admits");
        assert_ne!(second.rung, AdmitRung::Fast);
        let t1_after = eng.tenant("t1").unwrap();
        assert_eq!(t1_before.spans, t1_after.spans);
        assert_eq!(
            t1_before.schedule.as_ref().unwrap().segments(),
            t1_after.schedule.as_ref().unwrap().segments()
        );
        eng.check_invariants().expect("clean ledger");
    }
}
