//! The serve protocol's structured error taxonomy.
//!
//! Every failure reachable from socket input maps to one of these kinds
//! and is rendered as a typed JSON error response — the daemon never
//! panics on request bytes (satellite contract; `handle_frame`
//! additionally wraps request handling in `catch_unwind` as a last-resort
//! backstop, surfacing any latent bug as [`ErrorKind::Internal`]).

use sr_obs::escape_json;

/// The protocol error taxonomy. Stable lowercase labels are part of the
/// wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The frame payload is not valid JSON, or not a valid request shape.
    Malformed,
    /// The frame length prefix exceeds the daemon's frame cap.
    Oversized,
    /// The named tenant is not admitted.
    UnknownTenant,
    /// A tenant with this name is already admitted.
    DuplicateTenant,
    /// The tenant spec (TFG text, placement, names) is invalid.
    InvalidSpec,
    /// The admission ladder was exhausted: the tenant cannot be admitted
    /// against the current ledger (the response carries a diagnosis).
    Infeasible,
    /// A bug surfaced while handling the request (caught panic).
    Internal,
}

impl ErrorKind {
    /// The stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::Oversized => "oversized",
            ErrorKind::UnknownTenant => "unknown_tenant",
            ErrorKind::DuplicateTenant => "duplicate_tenant",
            ErrorKind::InvalidSpec => "invalid_spec",
            ErrorKind::Infeasible => "infeasible",
            ErrorKind::Internal => "internal",
        }
    }

    /// The `serve.errors.<label>` counter name for this kind.
    pub fn counter(self) -> String {
        format!("serve.errors.{}", self.label())
    }
}

/// A typed protocol error: kind, human-readable detail, and optional
/// extra JSON members (e.g. an admission diagnosis) spliced into the
/// error object verbatim.
#[derive(Debug, Clone)]
pub struct ServeError {
    /// Which taxonomy bucket.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub detail: String,
    /// Pre-rendered JSON members appended to the error object, each a
    /// `"key":value` fragment (no leading comma).
    pub extra: Vec<String>,
}

impl ServeError {
    /// A plain error with no extra members.
    pub fn new(kind: ErrorKind, detail: impl Into<String>) -> Self {
        ServeError {
            kind,
            detail: detail.into(),
            extra: Vec::new(),
        }
    }

    /// Renders the full error response document.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{{\"ok\":false,\"error\":{{\"kind\":\"{}\",\"detail\":\"{}\"",
            self.kind.label(),
            escape_json(&self.detail)
        );
        for member in &self.extra {
            out.push(',');
            out.push_str(member);
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_typed_error() {
        let e = ServeError::new(ErrorKind::UnknownTenant, "no tenant \"x\"");
        assert_eq!(
            e.render(),
            "{\"ok\":false,\"error\":{\"kind\":\"unknown_tenant\",\"detail\":\"no tenant \\\"x\\\"\"}}"
        );
        assert_eq!(ErrorKind::Oversized.counter(), "serve.errors.oversized");
    }

    #[test]
    fn extra_members_splice_into_the_error_object() {
        let mut e = ServeError::new(ErrorKind::Infeasible, "d");
        e.extra.push("\"rungs\":3".to_string());
        assert!(e.render().contains("\"detail\":\"d\",\"rungs\":3}"));
    }
}
