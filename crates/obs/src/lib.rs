//! Structured observability for the scheduled-routing pipeline: **spans**
//! (timed, nested regions), **counters** (monotonic `u64` sums), and
//! **histograms** (raw `f64` samples summarized as order statistics), all
//! behind the object-safe, thread-safe [`Recorder`] trait.
//!
//! The design constraint is the compiler's bit-identical-results guarantee:
//! `sr_core::compile` speculatively evaluates `(seed, scale)` candidates on
//! worker threads, and instrumentation must neither perturb that search nor
//! cost anything when disabled. Hence:
//!
//! * the default recorder is [`NoopRecorder`] (available as the [`NOOP`]
//!   static): every method is an empty inline body, and [`span_with`] skips
//!   even the `format!` for the span detail when [`Recorder::enabled`] is
//!   false, so uninstrumented runs pay one virtual call per span site;
//! * [`MetricsRecorder`] is `Sync` (one `Mutex` around all state) so worker
//!   threads record concurrently; each thread gets its own track (`tid`) in
//!   the exported trace;
//! * counter **names** carry the determinism contract: counters whose value
//!   depends on thread count or scheduling are namespaced under `par.`;
//!   everything else is emitted from the compiler's deterministic selection
//!   walk and is identical for any `parallelism` setting (tested by
//!   `tests/obs_determinism.rs` in the workspace).
//!
//! Exports: [`MetricsRecorder::chrome_trace_json`] produces the Chrome
//! tracing / Perfetto JSON array format (load via `chrome://tracing`),
//! [`MetricsRecorder::metrics_table`] a human-readable table, and
//! [`MetricsRecorder::metrics_json`] a machine-readable summary for benches.
//!
//! # Examples
//!
//! ```
//! use sr_obs::{MetricsRecorder, Recorder};
//!
//! let rec = MetricsRecorder::new();
//! {
//!     let span = sr_obs::span_with(&rec, "phase.demo", || "unit test".into());
//!     span.annotate("pivots", 3.0);
//!     rec.add("demo.widgets", 2);
//!     rec.observe("demo.latency_us", 12.5);
//! }
//! assert_eq!(rec.counter("demo.widgets"), 2);
//! assert!(rec.chrome_trace_json().contains("\"phase.demo\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod journal;
mod oi;
mod prometheus;

pub use events::{
    EventSink, NoopEventSink, RingEventSink, SimEvent, SimEventKind, NO_EVENTS, NO_ID,
};
pub use journal::{
    parse_journal, read_journal, JournalData, JournalSpan, JournalWriter, DEFAULT_MAX_BYTES,
};
pub use oi::{analyze_oi, MessageSlack, OiReport, Stall};
pub use prometheus::CounterSnapshot;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

/// Handle to an in-flight span, returned by [`Recorder::begin_span`].
///
/// [`SpanId::NONE`] is the sentinel a disabled recorder hands out; every
/// other method treats it as "do nothing".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The "no span" sentinel (what [`NoopRecorder`] always returns).
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the [`SpanId::NONE`] sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// A thread-safe sink for spans, counters, and histogram samples.
///
/// Implementations must be cheap to call from worker threads; the compiler
/// holds a `&dyn Recorder` and calls it from inside the speculative
/// candidate search. See [`NoopRecorder`] for the zero-overhead default and
/// [`MetricsRecorder`] for the collecting implementation.
pub trait Recorder: Send + Sync {
    /// Whether this recorder stores anything. Callers use this to skip
    /// building span details (string formatting) for disabled recorders.
    fn enabled(&self) -> bool;

    /// Opens a span named `name` (a `'static`-style dotted identifier) with
    /// free-form `detail`, on the calling thread's track, and returns its
    /// id. Close it with [`Recorder::end_span`] — or use the [`span_with`]
    /// RAII helper.
    fn begin_span(&self, name: &str, detail: &str) -> SpanId;

    /// Closes an open span. Ignores [`SpanId::NONE`] and unknown ids.
    fn end_span(&self, id: SpanId);

    /// Attaches a numeric argument to an open span (rendered under `args`
    /// in the Chrome trace). Ignores [`SpanId::NONE`] and closed spans.
    fn annotate(&self, id: SpanId, key: &str, value: f64);

    /// Adds `delta` to the counter `name` (created at zero on first use).
    fn add(&self, name: &str, delta: u64);

    /// Records one sample into the histogram `name`.
    fn observe(&self, name: &str, value: f64);
}

/// The zero-overhead default recorder: every method is an empty body.
///
/// Use the [`NOOP`] static to avoid constructing one.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

/// A ready-made [`NoopRecorder`] to pass as `&sr_obs::NOOP`.
pub static NOOP: NoopRecorder = NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn begin_span(&self, _name: &str, _detail: &str) -> SpanId {
        SpanId::NONE
    }
    fn end_span(&self, _id: SpanId) {}
    fn annotate(&self, _id: SpanId, _key: &str, _value: f64) {}
    fn add(&self, _name: &str, _delta: u64) {}
    fn observe(&self, _name: &str, _value: f64) {}
}

/// RAII guard that ends its span on drop. Created by [`span`]/[`span_with`].
pub struct SpanGuard<'a> {
    rec: &'a dyn Recorder,
    id: SpanId,
}

impl SpanGuard<'_> {
    /// The underlying span id ([`SpanId::NONE`] when recording is off).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attaches a numeric argument to the span (no-op when disabled).
    pub fn annotate(&self, key: &str, value: f64) {
        if !self.id.is_none() {
            self.rec.annotate(self.id, key, value);
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.id.is_none() {
            self.rec.end_span(self.id);
        }
    }
}

/// Opens a span with no detail text; ended when the guard drops.
pub fn span<'a>(rec: &'a dyn Recorder, name: &str) -> SpanGuard<'a> {
    span_with(rec, name, String::new)
}

/// Opens a span whose detail is built lazily — `detail` only runs when the
/// recorder is enabled, so disabled runs pay no formatting cost.
pub fn span_with<'a, F>(rec: &'a dyn Recorder, name: &str, detail: F) -> SpanGuard<'a>
where
    F: FnOnce() -> String,
{
    let id = if rec.enabled() {
        rec.begin_span(name, &detail())
    } else {
        SpanId::NONE
    };
    SpanGuard { rec, id }
}

/// One recorded span (closed or still open), as stored by
/// [`MetricsRecorder`] and returned by [`MetricsRecorder::spans`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (the dotted identifier passed to `begin_span`).
    pub name: String,
    /// Free-form detail text.
    pub detail: String,
    /// Track id: 1 + the order in which the recording thread was first
    /// seen (the main thread is usually 1).
    pub tid: u64,
    /// Start time, µs since the recorder was created.
    pub start_us: f64,
    /// Duration, µs; `None` while the span is still open.
    pub dur_us: Option<f64>,
    /// Numeric arguments attached via `annotate`, in attachment order.
    pub args: Vec<(String, f64)>,
}

/// Order statistics of one histogram, from
/// [`MetricsRecorder::histogram_summary`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Nearest-rank 50th percentile.
    pub p50: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample set (need not be sorted). NaN samples are
    /// dropped — they would otherwise sort above `+inf` under
    /// [`f64::total_cmp`] and poison `max`/`mean`. Empty input (or
    /// all-NaN input) gives the all-zero summary.
    pub fn of(samples: &[f64]) -> Summary {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
        if sorted.is_empty() {
            return Summary::default();
        }
        sorted.sort_by(f64::total_cmp);
        Summary {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted non-empty slice:
/// the smallest element with at least `q` of the samples at or below it.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Vec<f64>>,
    spans: Vec<SpanRecord>,
    /// Open spans: `(span id, index into spans)`. Small at any instant
    /// (bounded by live nesting × threads), so linear scans suffice.
    open: Vec<(u64, usize)>,
    threads: Vec<ThreadId>,
    next_id: u64,
}

impl Inner {
    fn tid(&mut self, thread: ThreadId) -> u64 {
        match self.threads.iter().position(|&t| t == thread) {
            Some(i) => i as u64 + 1,
            None => {
                self.threads.push(thread);
                self.threads.len() as u64
            }
        }
    }
}

/// A collecting [`Recorder`]: one mutex around counters, histograms, and
/// the span list, with per-thread track assignment and µs timestamps
/// relative to construction.
///
/// Rendering methods ([`MetricsRecorder::chrome_trace_json`],
/// [`MetricsRecorder::metrics_table`], [`MetricsRecorder::metrics_json`])
/// may be called at any time; spans still open are exported with their
/// duration measured up to the moment of export.
pub struct MetricsRecorder {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        MetricsRecorder::new()
    }
}

impl MetricsRecorder {
    /// A fresh, empty recorder; its clock starts now.
    pub fn new() -> Self {
        MetricsRecorder {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Recording closures never panic while holding the lock; if one
        // somehow did, the data is read-mostly and still usable.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of every counter, sorted by name.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.lock().counters.clone()
    }

    /// Summary of one histogram, or `None` if it has no samples.
    pub fn histogram_summary(&self, name: &str) -> Option<Summary> {
        self.lock()
            .histograms
            .get(name)
            .filter(|v| !v.is_empty())
            .map(|v| Summary::of(v))
    }

    /// Snapshot of every span recorded so far, in begin order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// The full trace in Chrome tracing JSON ("trace event format"):
    /// complete (`"ph":"X"`) events with µs timestamps, one `tid` per
    /// recording thread, span details and numeric annotations under
    /// `args`. Load the file via `chrome://tracing` or Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        self.chrome_trace_json_with_events(&[])
    }

    /// Like [`MetricsRecorder::chrome_trace_json`], but interleaves a
    /// simulation [`SimEvent`] stream into the same trace document:
    /// compile spans stay on pid 1 (wall-clock µs) while the simulation
    /// narrates itself on pid 2 (simulated µs), one track per directed
    /// channel, link occupancy as complete events and the point events
    /// (inject / block / deliver / output) as instants. The two processes
    /// use different time bases — compare shapes, not absolute offsets.
    pub fn chrome_trace_json_with_events(&self, events: &[SimEvent]) -> String {
        let now = self.now_us();
        let inner = self.lock();
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"srsched\"}}",
        );
        for s in &inner.spans {
            let dur = s.dur_us.unwrap_or_else(|| (now - s.start_us).max(0.0));
            out.push_str(",\n");
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"sr\",\"ph\":\"X\",\"ts\":{:.3},\
                 \"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{",
                escape_json(&s.name),
                s.start_us,
                dur,
                s.tid
            );
            let mut first = true;
            if !s.detail.is_empty() {
                let _ = write!(out, "\"detail\":\"{}\"", escape_json(&s.detail));
                first = false;
            }
            for (k, v) in &s.args {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", escape_json(k), json_num(*v));
                first = false;
            }
            out.push_str("}}");
        }
        out.push_str(&events::events_chrome_entries(events));
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// A human-readable metrics table (counters, histogram summaries, and
    /// per-name span totals). Rows are sorted by name, so the layout — and,
    /// for counters outside the `par.` namespace, the values — are
    /// deterministic regardless of thread count.
    pub fn metrics_table(&self) -> String {
        let now = self.now_us();
        let inner = self.lock();
        let mut out = String::new();
        if !inner.counters.is_empty() {
            let _ = writeln!(out, "{:<44} {:>12}", "counter", "value");
            for (name, v) in &inner.counters {
                let _ = writeln!(out, "{name:<44} {v:>12}");
            }
        }
        if !inner.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(
                out,
                "{:<44} {:>7} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "mean", "p50", "p95", "max"
            );
            for (name, samples) in &inner.histograms {
                let s = Summary::of(samples);
                let _ = writeln!(
                    out,
                    "{name:<44} {:>7} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                    s.count, s.mean, s.p50, s.p95, s.max
                );
            }
        }
        let agg = aggregate_spans(&inner.spans, now);
        if !agg.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(
                out,
                "{:<44} {:>7} {:>12} {:>12}",
                "span", "count", "total µs", "mean µs"
            );
            for (name, (count, total)) in &agg {
                let _ = writeln!(
                    out,
                    "{name:<44} {count:>7} {total:>12.1} {:>12.1}",
                    total / *count as f64
                );
            }
        }
        out
    }

    /// Machine-readable metrics JSON: counters verbatim, histograms as
    /// summaries, spans aggregated per name. Emitted by `sr-bench` next to
    /// the `BENCH_*.json` timing files.
    pub fn metrics_json(&self) -> String {
        let now = self.now_us();
        let inner = self.lock();
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in inner.counters.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    \"{}\": {v}",
                if i == 0 { "" } else { "," },
                escape_json(name)
            );
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, samples)) in inner.histograms.iter().enumerate() {
            let s = Summary::of(samples);
            let _ = write!(
                out,
                "{}\n    \"{}\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \
                 \"p95\": {}, \"max\": {}}}",
                if i == 0 { "" } else { "," },
                escape_json(name),
                s.count,
                json_num(s.mean),
                json_num(s.p50),
                json_num(s.p95),
                json_num(s.max)
            );
        }
        out.push_str("\n  },\n  \"spans\": {");
        for (i, (name, (count, total))) in aggregate_spans(&inner.spans, now).iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    \"{}\": {{\"count\": {count}, \"total_us\": {}}}",
                if i == 0 { "" } else { "," },
                escape_json(name),
                json_num(*total)
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

impl Recorder for MetricsRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn begin_span(&self, name: &str, detail: &str) -> SpanId {
        let start_us = self.now_us();
        let thread = std::thread::current().id();
        let mut inner = self.lock();
        inner.next_id += 1;
        let id = inner.next_id;
        let tid = inner.tid(thread);
        let idx = inner.spans.len();
        inner.spans.push(SpanRecord {
            name: name.to_string(),
            detail: detail.to_string(),
            tid,
            start_us,
            dur_us: None,
            args: Vec::new(),
        });
        inner.open.push((id, idx));
        SpanId(id)
    }

    fn end_span(&self, id: SpanId) {
        if id.is_none() {
            return;
        }
        let end_us = self.now_us();
        let mut inner = self.lock();
        if let Some(pos) = inner.open.iter().position(|&(oid, _)| oid == id.0) {
            let (_, idx) = inner.open.swap_remove(pos);
            let span = &mut inner.spans[idx];
            span.dur_us = Some((end_us - span.start_us).max(0.0));
        }
    }

    fn annotate(&self, id: SpanId, key: &str, value: f64) {
        if id.is_none() {
            return;
        }
        let mut inner = self.lock();
        if let Some(&(_, idx)) = inner.open.iter().find(|&&(oid, _)| oid == id.0) {
            inner.spans[idx].args.push((key.to_string(), value));
        }
    }

    fn add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn observe(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        match inner.histograms.get_mut(name) {
            Some(v) => v.push(value),
            None => {
                inner.histograms.insert(name.to_string(), vec![value]);
            }
        }
    }
}

/// Per-name `(count, total duration µs)` over all spans, sorted by name.
/// Open spans contribute their elapsed time up to `now`.
fn aggregate_spans(spans: &[SpanRecord], now: f64) -> BTreeMap<String, (usize, f64)> {
    let mut agg: BTreeMap<String, (usize, f64)> = BTreeMap::new();
    for s in spans {
        let dur = s.dur_us.unwrap_or_else(|| (now - s.start_us).max(0.0));
        let e = agg.entry(s.name.clone()).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += dur;
    }
    agg
}

/// Escapes a string for inclusion inside JSON double quotes.
///
/// Public because every crate in the workspace hand-rolls its JSON (no
/// serde); the serve daemon's protocol responses reuse this exact escaping.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (JSON has no NaN/Infinity — clamp to
/// 0 / the largest finite magnitudes so output always parses).
///
/// Public for the same reason as [`escape_json`]: one JSON number format
/// across every hand-rolled emitter in the workspace.
pub fn json_num(v: f64) -> String {
    if v.is_nan() {
        "0".into()
    } else if v.is_infinite() {
        if v > 0.0 {
            format!("{:e}", f64::MAX)
        } else {
            format!("{:e}", f64::MIN)
        }
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_inert() {
        assert!(!NOOP.enabled());
        let id = NOOP.begin_span("x", "y");
        assert!(id.is_none());
        NOOP.annotate(id, "k", 1.0);
        NOOP.end_span(id);
        NOOP.add("c", 5);
        NOOP.observe("h", 1.0);
        // span_with must not even build the detail string.
        let _g = span_with(&NOOP, "x", || panic!("detail built for a noop"));
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let r = MetricsRecorder::new();
        r.add("b.two", 2);
        r.add("a.one", 1);
        r.add("b.two", 3);
        assert_eq!(r.counter("b.two"), 5);
        assert_eq!(r.counter("absent"), 0);
        let names: Vec<String> = r.counters().into_keys().collect();
        assert_eq!(names, vec!["a.one".to_string(), "b.two".to_string()]);
    }

    #[test]
    fn histogram_summary_statistics() {
        let r = MetricsRecorder::new();
        for v in [4.0, 1.0, 3.0, 2.0, 100.0] {
            r.observe("h", v);
        }
        let s = r.histogram_summary("h").unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p95, 100.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 22.0).abs() < 1e-12);
        assert!(r.histogram_summary("absent").is_none());
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.5), 2.0);
        assert_eq!(percentile(&v, 0.75), 3.0);
        assert_eq!(percentile(&v, 0.76), 4.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn percentile_endpoints() {
        let v = [1.0, 2.0, 3.0, 4.0];
        // q = 0 clamps to the first element, q = 1 to the last.
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&[5.0], 0.0), 5.0);
        assert_eq!(percentile(&[5.0], 1.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "percentile of empty sample set")]
    fn percentile_empty_panics() {
        percentile(&[], 0.5);
    }

    #[test]
    fn summary_empty_input() {
        let s = Summary::of(&[]);
        assert_eq!(s, Summary::default());
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p95, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn summary_filters_nan() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0, f64::NAN]);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(!s.p95.is_nan());
        // All-NaN behaves like empty.
        assert_eq!(Summary::of(&[f64::NAN]), Summary::default());
    }

    #[test]
    fn spans_nest_and_annotate() {
        let r = MetricsRecorder::new();
        {
            let outer = span_with(&r, "outer", || "o".into());
            {
                let inner = span(&r, "inner");
                inner.annotate("pivots", 42.0);
            }
            outer.annotate("k", 1.0);
        }
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].detail, "o");
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].args, vec![("pivots".to_string(), 42.0)]);
        // Inner is contained in outer on the same tid.
        assert_eq!(spans[0].tid, spans[1].tid);
        let (o, i) = (&spans[0], &spans[1]);
        assert!(i.start_us >= o.start_us);
        assert!(i.start_us + i.dur_us.unwrap() <= o.start_us + o.dur_us.unwrap() + 1e-9);
    }

    #[test]
    fn annotate_after_end_is_ignored() {
        let r = MetricsRecorder::new();
        let id = r.begin_span("s", "");
        r.end_span(id);
        r.annotate(id, "late", 1.0);
        assert!(r.spans()[0].args.is_empty());
        // Double end is harmless.
        r.end_span(id);
    }

    #[test]
    fn chrome_trace_shape() {
        let r = MetricsRecorder::new();
        {
            let s = span_with(&r, "phase.x", || "detail \"quoted\"".into());
            s.annotate("pivots", 7.0);
        }
        let json = r.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":"));
        assert!(json.contains("\"dur\":"));
        assert!(json.contains("\"pivots\":7"));
        assert!(json.contains("detail \\\"quoted\\\""));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
        // An untouched recorder exports only the process-name metadata.
        let empty = MetricsRecorder::new().chrome_trace_json();
        assert!(!empty.contains("\"ph\":\"X\""));
    }

    #[test]
    fn chrome_trace_interleaves_sim_events() {
        let r = MetricsRecorder::new();
        {
            let _s = span(&r, "compile");
        }
        let events = [
            SimEvent {
                time_us: 1.0,
                kind: SimEventKind::LinkAcquired,
                message: 3,
                invocation: 0,
                channel: 2,
            },
            SimEvent {
                time_us: 5.0,
                kind: SimEventKind::LinkReleased,
                message: 3,
                invocation: 0,
                channel: 2,
            },
        ];
        let json = r.chrome_trace_json_with_events(&events);
        assert!(json.contains("\"compile\""));
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("\"simulation\""));
        assert!(json.contains("M3/i0"));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn open_spans_export_with_elapsed_duration() {
        let r = MetricsRecorder::new();
        let _id = r.begin_span("open", "");
        let json = r.chrome_trace_json();
        assert!(json.contains("\"open\""));
        assert!(json.contains("\"dur\":"));
        let table = r.metrics_table();
        assert!(table.contains("open"));
    }

    #[test]
    fn table_and_json_render() {
        let r = MetricsRecorder::new();
        r.add("search.candidates_walked", 3);
        r.observe("blocked_us", 5.0);
        {
            let _s = span(&r, "compile");
        }
        let table = r.metrics_table();
        assert!(table.contains("counter"));
        assert!(table.contains("search.candidates_walked"));
        assert!(table.contains("histogram"));
        assert!(table.contains("span"));
        let json = r.metrics_json();
        assert!(json.contains("\"search.candidates_walked\": 3"));
        assert!(json.contains("\"blocked_us\""));
        assert!(json.contains("\"compile\""));
        assert!(json.contains("\"total_us\""));
        // Empty recorder renders empty-but-valid documents.
        let empty = MetricsRecorder::new();
        assert!(empty.metrics_table().is_empty());
        assert!(empty.metrics_json().contains("\"counters\""));
    }

    #[test]
    fn metrics_table_emits_counters_in_sorted_key_order() {
        // Pinned guarantee for the CLI's `--metrics` table: rows are
        // sorted by name no matter the insertion (or thread) order, so
        // two runs of the same workload diff cleanly.
        let r = MetricsRecorder::new();
        for name in [
            "sim.flits",
            "compile.candidates",
            "par.tasks",
            "alloc_flow.dijkstra_pops",
        ] {
            r.add(name, 1);
        }
        let table = r.metrics_table();
        let rows: Vec<&str> = table
            .lines()
            .skip(1) // header
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        assert_eq!(
            rows,
            vec![
                "alloc_flow.dijkstra_pops",
                "compile.candidates",
                "par.tasks",
                "sim.flits"
            ]
        );
    }

    #[test]
    fn threads_get_distinct_tids() {
        let r = MetricsRecorder::new();
        {
            let _main = span(&r, "main");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _w = span(&r, "worker");
                });
            });
        }
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_ne!(spans[0].tid, spans[1].tid);
    }

    #[test]
    fn json_num_stays_finite() {
        assert_eq!(json_num(f64::NAN), "0");
        assert!(!json_num(f64::INFINITY).contains("inf"));
        assert_eq!(json_num(1.5), "1.5");
    }
}
