//! Simulation event streams: a flat, copyable event record ([`SimEvent`])
//! and a bounded, preallocated ring-buffer sink ([`RingEventSink`]) behind
//! the [`EventSink`] trait.
//!
//! The wormhole engine and the scheduled-routing replay both narrate a run
//! as the same six event kinds, so one analyzer (the OI analyzer in
//! [`crate::oi`]) serves both systems. The design mirrors the [`Recorder`]
//! pattern of this crate: the default sink is a no-op ([`NO_EVENTS`]) whose
//! every method is an empty inline body, and instrumented code guards each
//! emission on [`EventSink::enabled`], so uninstrumented runs pay one
//! boolean test per event site.
//!
//! [`Recorder`]: crate::Recorder

use std::fmt::Write as _;
use std::sync::Mutex;

/// Sentinel for "no message/channel" in a [`SimEvent`] field.
pub const NO_ID: u32 = u32::MAX;

/// What happened at one instant of a simulated (or replayed) run.
///
/// Channel ids use the wormhole encoding `2·link + direction` (a physical
/// link is a pair of unidirectional channels; direction 1 means the hop goes
/// from the higher-numbered node to the lower).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimEventKind {
    /// A message instance entered the network (source task completed).
    MessageInjected,
    /// The header stalled: the next channel of the route was occupied.
    HeaderBlocked,
    /// A channel of the route was captured.
    LinkAcquired,
    /// A captured channel was released.
    LinkReleased,
    /// The last flit arrived: the message is fully received.
    FlitDelivered,
    /// An invocation's final output task completed.
    OutputProduced,
}

impl SimEventKind {
    /// Short stable label, used in trace exports and reports.
    pub fn label(self) -> &'static str {
        match self {
            SimEventKind::MessageInjected => "inject",
            SimEventKind::HeaderBlocked => "blocked",
            SimEventKind::LinkAcquired => "acquire",
            SimEventKind::LinkReleased => "release",
            SimEventKind::FlitDelivered => "deliver",
            SimEventKind::OutputProduced => "output",
        }
    }
}

/// One timestamped event of a run. Flat and `Copy` so a preallocated ring
/// of them never touches the allocator on the hot path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimEvent {
    /// Simulated time, µs.
    pub time_us: f64,
    /// What happened.
    pub kind: SimEventKind,
    /// Message id, or [`NO_ID`] for events not tied to a message
    /// ([`SimEventKind::OutputProduced`]).
    pub message: u32,
    /// Invocation index.
    pub invocation: u32,
    /// Directed channel id (`2·link + direction`), or [`NO_ID`] for events
    /// not tied to a channel.
    pub channel: u32,
}

/// A sink for [`SimEvent`]s, cheap enough to call from the simulator's
/// inner loop. See [`NoopEventSink`] for the zero-overhead default and
/// [`RingEventSink`] for the bounded collecting implementation.
pub trait EventSink: Send + Sync {
    /// Whether this sink stores anything; emitters skip even constructing
    /// the event when false.
    fn enabled(&self) -> bool;

    /// Records one event.
    fn record(&self, event: SimEvent);
}

/// The zero-overhead default sink: every method is an empty body.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopEventSink;

/// A ready-made [`NoopEventSink`] to pass as `&sr_obs::NO_EVENTS`.
pub static NO_EVENTS: NoopEventSink = NoopEventSink;

impl EventSink for NoopEventSink {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, _event: SimEvent) {}
}

struct Ring {
    buf: Vec<SimEvent>,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

/// A bounded, preallocated ring-buffer sink: the backing `Vec` is allocated
/// once at construction and recording never reallocates. When full, the
/// *oldest* events are overwritten (the tail of a run — deliveries and
/// outputs — is what the OI analyzer needs) and [`RingEventSink::dropped`]
/// counts the overwrites.
pub struct RingEventSink {
    capacity: usize,
    inner: Mutex<Ring>,
}

impl RingEventSink {
    /// A sink holding at most `capacity` events (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingEventSink {
            capacity,
            inner: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                head: 0,
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The fixed capacity chosen at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().buf.is_empty()
    }

    /// How many old events were overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Snapshot of the retained events in recording order (oldest first).
    pub fn events(&self) -> Vec<SimEvent> {
        let ring = self.lock();
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.head..]);
        out.extend_from_slice(&ring.buf[..ring.head]);
        out
    }
}

impl EventSink for RingEventSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: SimEvent) {
        let mut ring = self.lock();
        if ring.buf.len() < self.capacity {
            ring.buf.push(event);
        } else {
            let head = ring.head;
            ring.buf[head] = event;
            ring.head = (head + 1) % self.capacity;
            ring.dropped += 1;
        }
    }
}

/// Renders a slice of simulation events as Chrome-tracing entries (without
/// the `traceEvents` envelope): each acquire→release pair becomes a
/// complete (`"ph":"X"`) event on the channel's own track, everything else
/// an instant (`"ph":"i"`) event on a shared lifecycle track. All entries
/// sit on `pid` 2 so they interleave with — but stay visually separate
/// from — the compile spans of
/// [`MetricsRecorder::chrome_trace_json_with_events`].
///
/// Each returned entry is prefixed with `",\n"` so it can be appended
/// directly after a previous entry.
///
/// [`MetricsRecorder::chrome_trace_json_with_events`]:
/// crate::MetricsRecorder::chrome_trace_json_with_events
pub(crate) fn events_chrome_entries(events: &[SimEvent]) -> String {
    let mut out = String::new();
    if events.is_empty() {
        return out;
    }
    out.push_str(
        ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
         \"args\":{\"name\":\"simulation\"}}",
    );
    let end_time = events
        .iter()
        .map(|e| e.time_us)
        .fold(f64::NEG_INFINITY, f64::max);
    // Open captures per (channel, message, invocation); matched FIFO.
    let mut open: Vec<(u32, u32, u32, f64)> = Vec::new();
    let emit_capture = |out: &mut String, ch: u32, m: u32, inv: u32, start: f64, end: f64| {
        let _ = write!(
            out,
            ",\n{{\"name\":\"M{m}/i{inv}\",\"cat\":\"sim\",\"ph\":\"X\",\
             \"ts\":{start:.3},\"dur\":{:.3},\"pid\":2,\"tid\":{},\
             \"args\":{{\"channel\":{ch}}}}}",
            (end - start).max(0.0),
            ch + 1
        );
    };
    for e in events {
        match e.kind {
            SimEventKind::LinkAcquired => {
                open.push((e.channel, e.message, e.invocation, e.time_us));
            }
            SimEventKind::LinkReleased => {
                if let Some(pos) = open.iter().position(|&(ch, m, inv, _)| {
                    ch == e.channel && m == e.message && inv == e.invocation
                }) {
                    let (ch, m, inv, start) = open.remove(pos);
                    emit_capture(&mut out, ch, m, inv, start, e.time_us);
                }
            }
            kind => {
                let name = match kind {
                    SimEventKind::OutputProduced => format!("output i{}", e.invocation),
                    k => format!("{} M{}/i{}", k.label(), e.message, e.invocation),
                };
                let _ = write!(
                    out,
                    ",\n{{\"name\":\"{name}\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{:.3},\"pid\":2,\"tid\":0,\"args\":{{\"channel\":{}}}}}",
                    e.time_us,
                    i64::from(e.channel != NO_ID) * i64::from(e.channel)
                        - i64::from(e.channel == NO_ID)
                );
            }
        }
    }
    // Channels still held at the end of the stream (deadlocked flights).
    for (ch, m, inv, start) in open {
        emit_capture(&mut out, ch, m, inv, start, end_time);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, kind: SimEventKind, m: u32, inv: u32, ch: u32) -> SimEvent {
        SimEvent {
            time_us: t,
            kind,
            message: m,
            invocation: inv,
            channel: ch,
        }
    }

    #[test]
    fn noop_sink_is_inert() {
        assert!(!NO_EVENTS.enabled());
        NO_EVENTS.record(ev(0.0, SimEventKind::MessageInjected, 0, 0, NO_ID));
    }

    #[test]
    fn ring_preserves_order_below_capacity() {
        let sink = RingEventSink::with_capacity(8);
        for i in 0..5 {
            sink.record(ev(i as f64, SimEventKind::MessageInjected, i, 0, NO_ID));
        }
        assert_eq!(sink.len(), 5);
        assert_eq!(sink.dropped(), 0);
        let events = sink.events();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].time_us < w[1].time_us));
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let sink = RingEventSink::with_capacity(4);
        for i in 0..10u32 {
            sink.record(ev(i as f64, SimEventKind::MessageInjected, i, 0, NO_ID));
        }
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 6);
        let kept: Vec<u32> = sink.events().iter().map(|e| e.message).collect();
        // The newest four survive, in order.
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_zero_capacity_clamps_to_one() {
        let sink = RingEventSink::with_capacity(0);
        assert_eq!(sink.capacity(), 1);
        assert!(sink.is_empty());
        sink.record(ev(1.0, SimEventKind::OutputProduced, NO_ID, 0, NO_ID));
        sink.record(ev(2.0, SimEventKind::OutputProduced, NO_ID, 1, NO_ID));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events()[0].invocation, 1);
    }

    #[test]
    fn chrome_entries_pair_captures_and_close_leaks() {
        let events = vec![
            ev(0.0, SimEventKind::MessageInjected, 0, 0, NO_ID),
            ev(0.0, SimEventKind::LinkAcquired, 0, 0, 3),
            ev(1.0, SimEventKind::HeaderBlocked, 1, 0, 3),
            ev(5.0, SimEventKind::LinkReleased, 0, 0, 3),
            ev(5.0, SimEventKind::FlitDelivered, 0, 0, NO_ID),
            // Channel 4 acquired but never released (deadlock-style leak).
            ev(6.0, SimEventKind::LinkAcquired, 1, 0, 4),
            ev(9.0, SimEventKind::OutputProduced, NO_ID, 0, NO_ID),
        ];
        let s = events_chrome_entries(&events);
        assert!(s.contains("\"name\":\"M0/i0\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"dur\":5.000"));
        assert!(s.contains("blocked M1/i0"));
        assert!(s.contains("output i0"));
        // The leaked capture is closed at the stream's end time (9 − 6).
        assert!(s.contains("\"dur\":3.000"), "{s}");
        assert!(events_chrome_entries(&[]).is_empty());
    }
}
