//! Persistent JSONL event journal: one self-describing JSON object per
//! line, appended to a file with bounded rotation, replayable offline.
//!
//! A live run holds its observability in memory ([`crate::MetricsRecorder`]
//! counters/spans, [`crate::RingEventSink`] events) and loses it at process
//! exit. The journal persists the same data as newline-delimited JSON so a
//! later process can re-analyze the run — feed the replayed events to
//! [`crate::analyze_oi`] or re-render a report — without re-simulating:
//!
//! * `{"t":"meta", ...}` — free-form string pairs naming the run;
//! * `{"t":"counter","k":...,"v":...}` — one line per counter;
//! * `{"t":"hist","k":...,"count":...,"mean":...,...}` — histogram summary;
//! * `{"t":"span","name":...,"start_us":...,"dur_us":...}` — one span;
//! * `{"t":"event","time_us":...,"kind":"inject",...}` — one [`SimEvent`].
//!
//! `f64` fields are written with Rust's shortest round-trip `Display`, so a
//! replayed value is **bit-identical** to the recorded one (this is what
//! makes offline [`crate::analyze_oi`] agree exactly with the live run).
//! [`NO_ID`] sentinels are written as JSON `null`.
//!
//! **Rotation**: when appending would push the file past the writer's byte
//! budget, the file is renamed to `<path>.1` (replacing any previous `.1`)
//! and a fresh file is started — total disk use stays under twice the
//! budget, newest data always wins (mirroring [`crate::RingEventSink`]).
//!
//! **Reading** is tolerant by design: a journal truncated mid-line (crash,
//! rotation race, ring overflow upstream) parses up to the damage;
//! malformed lines are counted in [`JournalData::skipped`], never a panic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crate::events::{SimEvent, SimEventKind, NO_ID};
use crate::{escape_json, MetricsRecorder, Summary};

/// Default rotation budget: 8 MiB per journal file.
pub const DEFAULT_MAX_BYTES: u64 = 8 * 1024 * 1024;

/// Appends journal lines to a file with bounded rotation.
pub struct JournalWriter {
    path: PathBuf,
    max_bytes: u64,
    file: io::BufWriter<fs::File>,
    size: u64,
    lines: u64,
    rotations: u64,
}

impl JournalWriter {
    /// Opens `path` for appending, with at most `max_bytes` per file
    /// (clamped to ≥ 4 KiB; pass [`DEFAULT_MAX_BYTES`] normally). An
    /// existing file already over budget is rotated away immediately.
    pub fn create(path: impl Into<PathBuf>, max_bytes: u64) -> io::Result<JournalWriter> {
        let path = path.into();
        let max_bytes = max_bytes.max(4096);
        let size = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let mut w = JournalWriter {
            file: io::BufWriter::new(
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)?,
            ),
            size,
            path,
            max_bytes,
            lines: 0,
            rotations: 0,
        };
        if w.size >= w.max_bytes {
            w.rotate()?;
        }
        Ok(w)
    }

    /// Lines written through this writer (excludes pre-existing content).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// How many times the file was rotated to `<path>.1`.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.file.flush()?;
        let mut old = self.path.clone().into_os_string();
        old.push(".1");
        fs::rename(&self.path, &old)?;
        self.file = io::BufWriter::new(
            fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)?,
        );
        self.size = 0;
        self.rotations += 1;
        Ok(())
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        if self.size + line.len() as u64 + 1 > self.max_bytes && self.size > 0 {
            self.rotate()?;
        }
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.size += line.len() as u64 + 1;
        self.lines += 1;
        Ok(())
    }

    /// Writes one caller-rendered JSONL line through the same rotation
    /// machinery as the typed writers. The caller owns the vocabulary —
    /// the serve audit journal appends its `{"t":"audit",...}` records
    /// this way — but the line must be a single line (no `\n`).
    ///
    /// # Errors
    ///
    /// `InvalidInput` if `line` contains a newline (it would tear the
    /// JSONL framing); otherwise propagates file I/O errors.
    pub fn raw(&mut self, line: &str) -> io::Result<()> {
        if line.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "journal line must not contain a newline",
            ));
        }
        self.write_line(line)
    }

    /// Writes one meta line from free-form string pairs (run id, command
    /// line, workload name, …).
    pub fn meta(&mut self, pairs: &[(&str, &str)]) -> io::Result<()> {
        let mut line = String::from("{\"t\":\"meta\"");
        for (k, v) in pairs {
            let _ = write!(line, ",\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        line.push('}');
        self.write_line(&line)
    }

    /// Writes one counter line.
    pub fn counter(&mut self, key: &str, value: u64) -> io::Result<()> {
        self.write_line(&format!(
            "{{\"t\":\"counter\",\"k\":\"{}\",\"v\":{value}}}",
            escape_json(key)
        ))
    }

    /// Writes one event line. [`NO_ID`] fields become `null`.
    pub fn event(&mut self, e: &SimEvent) -> io::Result<()> {
        fn id(v: u32) -> String {
            if v == NO_ID {
                "null".to_string()
            } else {
                v.to_string()
            }
        }
        self.write_line(&format!(
            "{{\"t\":\"event\",\"time_us\":{},\"kind\":\"{}\",\"message\":{},\
             \"invocation\":{},\"channel\":{}}}",
            e.time_us,
            e.kind.label(),
            id(e.message),
            id(e.invocation),
            id(e.channel)
        ))
    }

    /// Writes one event line per element of `events`, in order.
    pub fn events(&mut self, events: &[SimEvent]) -> io::Result<()> {
        for e in events {
            self.event(e)?;
        }
        Ok(())
    }

    /// Persists a recorder's full state: every counter (sorted by name),
    /// every histogram summary (sorted by name), then every span in begin
    /// order. Span numeric annotations are folded into a compact
    /// `key=value` detail suffix (journal lines stay flat objects).
    pub fn recorder(&mut self, rec: &MetricsRecorder) -> io::Result<()> {
        let now = rec.now_us();
        let inner = rec.lock();
        for (k, v) in &inner.counters {
            self.counter(k, *v)?;
        }
        for (k, samples) in &inner.histograms {
            let s = Summary::of(samples);
            self.write_line(&format!(
                "{{\"t\":\"hist\",\"k\":\"{}\",\"count\":{},\"mean\":{},\"p50\":{},\
                 \"p95\":{},\"max\":{}}}",
                escape_json(k),
                s.count,
                s.mean,
                s.p50,
                s.p95,
                s.max
            ))?;
        }
        for s in &inner.spans {
            let mut detail = s.detail.clone();
            for (k, v) in &s.args {
                if !detail.is_empty() {
                    detail.push(' ');
                }
                let _ = write!(detail, "{k}={v}");
            }
            let dur = s
                .dur_us
                .map(|d| d.to_string())
                .unwrap_or_else(|| (now - s.start_us).max(0.0).to_string());
            self.write_line(&format!(
                "{{\"t\":\"span\",\"name\":\"{}\",\"detail\":\"{}\",\"tid\":{},\
                 \"start_us\":{},\"dur_us\":{dur}}}",
                escape_json(&s.name),
                escape_json(&detail),
                s.tid,
                s.start_us
            ))?;
        }
        Ok(())
    }

    /// Flushes buffered lines to disk. Called automatically on drop (where
    /// errors are ignored); call explicitly to observe write failures.
    pub fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        let _ = self.file.flush();
    }
}

/// One span replayed from a journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalSpan {
    /// Span name.
    pub name: String,
    /// Detail text (with numeric annotations folded in as `key=value`).
    pub detail: String,
    /// Recording thread's track id.
    pub tid: u64,
    /// Start time, µs since the recorder's epoch.
    pub start_us: f64,
    /// Duration, µs (open spans were journaled with their elapsed time).
    pub dur_us: f64,
}

/// Everything replayed from one journal file.
#[derive(Debug, Clone, Default)]
pub struct JournalData {
    /// Union of all meta lines' string pairs (later lines win).
    pub meta: BTreeMap<String, String>,
    /// Replayed counters (a key journaled twice sums, matching counter
    /// semantics).
    pub counters: BTreeMap<String, u64>,
    /// Replayed histogram summaries by name.
    pub histograms: BTreeMap<String, Summary>,
    /// Replayed spans in journal order.
    pub spans: Vec<JournalSpan>,
    /// Replayed simulation events in journal order.
    pub events: Vec<SimEvent>,
    /// Lines that failed to parse (truncated tail, corruption) and were
    /// skipped.
    pub skipped: usize,
}

/// Reads and parses a journal file. Only I/O failures are errors; malformed
/// content is skipped and counted (see [`JournalData::skipped`]).
pub fn read_journal(path: &Path) -> io::Result<JournalData> {
    Ok(parse_journal(&fs::read_to_string(path)?))
}

/// Parses journal text (see [`read_journal`]).
pub fn parse_journal(text: &str) -> JournalData {
    let mut data = JournalData::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if parse_line(line, &mut data).is_none() {
            data.skipped += 1;
        }
    }
    data
}

/// One parsed JSON scalar of a journal line.
enum Val {
    Str(String),
    Num(f64),
    Null,
}

impl Val {
    fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Val::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// `null` maps to [`NO_ID`], matching the writer's encoding.
    fn as_id(&self) -> Option<u32> {
        match self {
            Val::Null => Some(NO_ID),
            Val::Num(v) if *v >= 0.0 && *v <= f64::from(u32::MAX) => Some(*v as u32),
            _ => None,
        }
    }
}

fn parse_line(line: &str, data: &mut JournalData) -> Option<()> {
    let obj = parse_flat_object(line)?;
    match obj.get("t")?.as_str()? {
        "meta" => {
            for (k, v) in &obj {
                if k != "t" {
                    if let Val::Str(s) = v {
                        data.meta.insert(k.clone(), s.clone());
                    }
                }
            }
        }
        "counter" => {
            let k = obj.get("k")?.as_str()?.to_string();
            let v = obj.get("v")?.as_f64()?;
            if v < 0.0 || v.is_nan() || v.fract() != 0.0 {
                return None;
            }
            *data.counters.entry(k).or_insert(0) += v as u64;
        }
        "hist" => {
            let k = obj.get("k")?.as_str()?.to_string();
            data.histograms.insert(
                k,
                Summary {
                    count: obj.get("count")?.as_f64()? as usize,
                    mean: obj.get("mean")?.as_f64()?,
                    p50: obj.get("p50")?.as_f64()?,
                    p95: obj.get("p95")?.as_f64()?,
                    max: obj.get("max")?.as_f64()?,
                },
            );
        }
        "span" => {
            data.spans.push(JournalSpan {
                name: obj.get("name")?.as_str()?.to_string(),
                detail: obj
                    .get("detail")
                    .and_then(Val::as_str)
                    .unwrap_or_default()
                    .to_string(),
                tid: obj.get("tid")?.as_f64()? as u64,
                start_us: obj.get("start_us")?.as_f64()?,
                dur_us: obj.get("dur_us")?.as_f64()?,
            });
        }
        "event" => {
            let kind = match obj.get("kind")?.as_str()? {
                "inject" => SimEventKind::MessageInjected,
                "blocked" => SimEventKind::HeaderBlocked,
                "acquire" => SimEventKind::LinkAcquired,
                "release" => SimEventKind::LinkReleased,
                "deliver" => SimEventKind::FlitDelivered,
                "output" => SimEventKind::OutputProduced,
                _ => return None,
            };
            data.events.push(SimEvent {
                time_us: obj.get("time_us")?.as_f64()?,
                kind,
                message: obj.get("message")?.as_id()?,
                invocation: obj.get("invocation")?.as_id()?,
                channel: obj.get("channel")?.as_id()?,
            });
        }
        _ => return None,
    }
    Some(())
}

/// Parses one flat JSON object — string keys, scalar values (string,
/// number, `null`) — the only shape the writer emits. Returns `None` on
/// anything else, including trailing garbage.
fn parse_flat_object(line: &str) -> Option<BTreeMap<String, Val>> {
    let mut chars = line.char_indices().peekable();
    let mut obj = BTreeMap::new();
    skip_ws(&mut chars);
    if chars.next()?.1 != '{' {
        return None;
    }
    skip_ws(&mut chars);
    if let Some(&(_, '}')) = chars.peek() {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(line, &mut chars)?;
            skip_ws(&mut chars);
            if chars.next()?.1 != ':' {
                return None;
            }
            skip_ws(&mut chars);
            let val = match chars.peek()?.1 {
                '"' => Val::Str(parse_string(line, &mut chars)?),
                'n' => {
                    for expect in "null".chars() {
                        if chars.next()?.1 != expect {
                            return None;
                        }
                    }
                    Val::Null
                }
                _ => {
                    let start = chars.peek()?.0;
                    let mut end = start;
                    while let Some(&(i, c)) = chars.peek() {
                        if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                            end = i + c.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    Val::Num(line[start..end].parse().ok()?)
                }
            };
            obj.insert(key, val);
            skip_ws(&mut chars);
            match chars.next()?.1 {
                ',' => continue,
                '}' => break,
                _ => return None,
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None; // trailing garbage
    }
    Some(obj)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
    while let Some(&(_, c)) = chars.peek() {
        if c.is_ascii_whitespace() {
            chars.next();
        } else {
            break;
        }
    }
}

/// Parses a JSON string (cursor on the opening quote), decoding the escape
/// set [`escape_json`] emits plus `\/`, `\b`, `\f`, and `\uXXXX`.
fn parse_string(
    line: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
) -> Option<String> {
    if chars.next()?.1 != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        let (_, c) = chars.next()?;
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{0008}'),
                'f' => out.push('\u{000c}'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (i, h) = chars.next()?;
                        code =
                            code * 16 + u32::from_str_radix(&line[i..i + h.len_utf8()], 16).ok()?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn ev(t: f64, kind: SimEventKind, m: u32, inv: u32, ch: u32) -> SimEvent {
        SimEvent {
            time_us: t,
            kind,
            message: m,
            invocation: inv,
            channel: ch,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sr_obs_journal_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn events_round_trip_bit_identically() {
        let path = tmp("roundtrip");
        let _ = fs::remove_file(&path);
        let events = vec![
            ev(0.1 + 0.2, SimEventKind::MessageInjected, 3, 0, NO_ID),
            ev(1.0 / 3.0, SimEventKind::LinkAcquired, 3, 0, 17),
            ev(f64::MAX / 1e300, SimEventKind::LinkReleased, 3, 0, 17),
            ev(5e-324, SimEventKind::FlitDelivered, 3, 0, NO_ID),
            ev(97.25, SimEventKind::OutputProduced, NO_ID, 2, NO_ID),
            ev(99.0, SimEventKind::HeaderBlocked, 1, 1, 4),
        ];
        let mut w = JournalWriter::create(&path, DEFAULT_MAX_BYTES).unwrap();
        w.meta(&[("command", "test \"quoted\""), ("period_us", "100")])
            .unwrap();
        w.events(&events).unwrap();
        w.flush().unwrap();
        let data = read_journal(&path).unwrap();
        assert_eq!(data.skipped, 0);
        // Bit-identical f64 round-trip: shortest Display → parse is exact.
        assert_eq!(data.events, events);
        assert_eq!(data.meta["command"], "test \"quoted\"");
        assert_eq!(data.meta["period_us"], "100");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn recorder_state_round_trips() {
        let path = tmp("recorder");
        let _ = fs::remove_file(&path);
        let rec = MetricsRecorder::new();
        rec.add("sim.outputs", 42);
        rec.add("compile.messages", 7);
        rec.observe("demo.latency_us", 2.0);
        rec.observe("demo.latency_us", 4.0);
        {
            let span = crate::span_with(&rec, "phase.demo", || "detail".into());
            span.annotate("pivots", 3.0);
        }
        let mut w = JournalWriter::create(&path, DEFAULT_MAX_BYTES).unwrap();
        w.recorder(&rec).unwrap();
        w.flush().unwrap();
        let data = read_journal(&path).unwrap();
        assert_eq!(data.skipped, 0);
        assert_eq!(data.counters, rec.counters());
        assert_eq!(data.histograms["demo.latency_us"].count, 2);
        assert_eq!(data.histograms["demo.latency_us"].mean, 3.0);
        assert_eq!(data.spans.len(), 1);
        assert_eq!(data.spans[0].name, "phase.demo");
        assert_eq!(data.spans[0].detail, "detail pivots=3");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rotation_bounds_disk_use_and_keeps_newest() {
        let path = tmp("rotate");
        let mut old = path.clone().into_os_string();
        old.push(".1");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&old);
        // Budget is clamped to 4096; write well past two budgets' worth.
        let mut w = JournalWriter::create(&path, 0).unwrap();
        for i in 0..400u32 {
            w.event(&ev(i as f64, SimEventKind::MessageInjected, i, 0, NO_ID))
                .unwrap();
        }
        w.flush().unwrap();
        assert!(w.rotations() >= 1);
        assert!(fs::metadata(&path).unwrap().len() <= 4096);
        assert!(fs::metadata(&old).unwrap().len() <= 4096);
        // The live file holds the newest events.
        let data = read_journal(&path).unwrap();
        assert_eq!(data.skipped, 0);
        assert_eq!(data.events.last().unwrap().message, 399);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&old);
    }

    #[test]
    fn rotation_at_the_byte_boundary_never_tears_a_record() {
        let path = tmp("boundary");
        let mut old = path.clone().into_os_string();
        old.push(".1");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&old);
        // Records sized so one lands exactly astride the (clamped 4 KiB)
        // budget: the writer must rotate *between* records, leaving every
        // line whole in exactly one of the two files.
        // 45 records × ~144 bytes ≈ 6.5 KiB: past one budget (forcing a
        // rotation) but under two (so no record is dropped, only moved).
        let mut w = JournalWriter::create(&path, 0).unwrap();
        let total = 45u64;
        for i in 0..total {
            w.counter(&format!("boundary.key.{i:04}.{}", "x".repeat(97)), i)
                .unwrap();
        }
        w.flush().unwrap();
        assert_eq!(w.lines(), total);
        assert!(w.rotations() >= 1, "budget was never exceeded");
        let rotated = fs::read_to_string(&old).unwrap();
        let live = fs::read_to_string(&path).unwrap();
        // Both files end on a record boundary and respect the budget.
        assert!(rotated.ends_with('\n') && live.ends_with('\n'));
        assert!(rotated.len() as u64 <= 4096);
        // Every record parses whole from one file; together they are the
        // full write sequence in order.
        let both = format!("{rotated}{live}");
        let data = parse_journal(&both);
        assert_eq!(data.skipped, 0);
        assert_eq!(data.counters.len(), total as usize);
        for i in 0..total {
            assert_eq!(
                data.counters[&format!("boundary.key.{i:04}.{}", "x".repeat(97))],
                i
            );
        }
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&old);
    }

    #[test]
    fn raw_lines_ride_the_same_rotation_and_reject_newlines() {
        let path = tmp("raw");
        let _ = fs::remove_file(&path);
        let mut w = JournalWriter::create(&path, DEFAULT_MAX_BYTES).unwrap();
        w.raw("{\"t\":\"audit\",\"op\":\"admit\",\"tenant\":\"t0\"}")
            .unwrap();
        assert!(w.raw("{\"t\":\"audit\"}\n{\"t\":\"audit\"}").is_err());
        w.flush().unwrap();
        assert_eq!(w.lines(), 1);
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "{\"t\":\"audit\",\"op\":\"admit\",\"tenant\":\"t0\"}\n"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn malformed_and_truncated_lines_are_skipped_not_fatal() {
        let text = concat!(
            "{\"t\":\"counter\",\"k\":\"a\",\"v\":1}\n",
            "not json at all\n",
            "{\"t\":\"event\",\"kind\":\"nonsense\",\"time_us\":1,\
             \"message\":0,\"invocation\":0,\"channel\":0}\n",
            "{\"t\":\"counter\",\"k\":\"a\",\"v\":2}\n",
            "{\"t\":\"event\",\"time_us\":3.5,\"kind\":\"output\",\"message\":null,\
             \"invocation\":0,\"channel\":null}\n",
            "{\"t\":\"event\",\"time_us\":4.0,\"kind\":\"inj", // truncated mid-line
        );
        let data = parse_journal(text);
        assert_eq!(data.skipped, 3);
        // Counter lines sum (counter semantics).
        assert_eq!(data.counters["a"], 3);
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.events[0].message, NO_ID);
        assert_eq!(data.events[0].channel, NO_ID);
        assert_eq!(data.events[0].kind, SimEventKind::OutputProduced);
    }

    #[test]
    fn append_across_writers_accumulates() {
        let path = tmp("append");
        let _ = fs::remove_file(&path);
        {
            let mut w = JournalWriter::create(&path, DEFAULT_MAX_BYTES).unwrap();
            w.counter("runs", 1).unwrap();
        }
        {
            let mut w = JournalWriter::create(&path, DEFAULT_MAX_BYTES).unwrap();
            w.counter("runs", 1).unwrap();
        }
        let data = read_journal(&path).unwrap();
        assert_eq!(data.counters["runs"], 2);
        let _ = fs::remove_file(&path);
    }
}
