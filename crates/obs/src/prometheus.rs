//! Prometheus text-format exposition for [`MetricsRecorder`], plus counter
//! snapshots for periodic deltas.
//!
//! [`MetricsRecorder::export_prometheus`] renders the recorder's state in
//! the Prometheus text exposition format (version 0.0.4): counters become
//! `sr_<name>_total` counter metrics, histograms become **summary**
//! metrics (`quantile`-labelled sample lines plus the `_sum`/`_count`
//! pair), and per-name span aggregates become labelled totals. Everything
//! is emitted in sorted order, so two exports of the same state are
//! byte-identical — the same determinism contract as
//! [`MetricsRecorder::metrics_table`].
//!
//! For a long-running process that wants *rates* rather than cumulative
//! values (for example a journal heartbeat line every N seconds), take a
//! [`CounterSnapshot`] per period and render
//! [`CounterSnapshot::delta_since`] — the increments since the previous
//! snapshot.
//!
//! Metric names are sanitized to the Prometheus grammar (`[a-zA-Z0-9_]`,
//! non-conforming bytes become `_`, and a leading digit gains a `_`
//! prefix) under the `sr_` namespace: `compile.candidates` exports as
//! `sr_compile_candidates_total`. Distinct raw names that sanitize to the
//! same metric name are merged by summing.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{aggregate_spans, json_num, MetricsRecorder, Summary};

/// A point-in-time copy of every counter, for computing periodic deltas.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    counters: BTreeMap<String, u64>,
}

impl CounterSnapshot {
    /// The captured counter values, sorted by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Per-counter increments from `earlier` to `self` (monotonic
    /// counters: a counter absent from `earlier` contributes its full
    /// value; decreases clamp to zero). Zero deltas are omitted.
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut counters = BTreeMap::new();
        for (name, &now) in &self.counters {
            let before = earlier.counters.get(name).copied().unwrap_or(0);
            if now > before {
                counters.insert(name.clone(), now - before);
            }
        }
        CounterSnapshot { counters }
    }

    /// Renders just these counters in the Prometheus text format (see
    /// [`MetricsRecorder::export_prometheus`] for naming rules).
    pub fn export_prometheus(&self) -> String {
        let mut out = String::new();
        render_counters(&mut out, &self.counters);
        out
    }
}

impl MetricsRecorder {
    /// Captures the current value of every counter for later diffing via
    /// [`CounterSnapshot::delta_since`].
    pub fn counter_snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            counters: self.lock().counters.clone(),
        }
    }

    /// The recorder's state in the Prometheus text exposition format:
    /// sorted, self-describing (`# TYPE` lines), and safe to serve from a
    /// scrape endpoint or dump to a `.prom` textfile. Open spans
    /// contribute their elapsed time up to the moment of export.
    pub fn export_prometheus(&self) -> String {
        let now = self.now_us();
        let inner = self.lock();
        let mut out = String::new();
        render_counters(&mut out, &inner.counters);

        let mut hists: BTreeMap<String, (Summary, f64)> = BTreeMap::new();
        for (name, samples) in &inner.histograms {
            let s = Summary::of(samples);
            let sum: f64 = samples.iter().filter(|v| !v.is_nan()).sum();
            let e = hists.entry(metric_name(name, "")).or_default();
            // Merged sanitized names keep the larger sample set's quantile
            // shape; counts and sums always accumulate.
            let count = e.0.count + s.count;
            if s.count > e.0.count {
                e.0 = s;
            }
            e.0.count = count;
            e.1 += sum;
        }
        for (metric, (s, sum)) in &hists {
            let _ = writeln!(out, "# TYPE {metric} summary");
            for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("1", s.max)] {
                let _ = writeln!(out, "{metric}{{quantile=\"{q}\"}} {}", json_num(v));
            }
            let _ = writeln!(out, "{metric}_sum {}", json_num(*sum));
            let _ = writeln!(out, "{metric}_count {}", s.count);
        }

        let agg = aggregate_spans(&inner.spans, now);
        if !agg.is_empty() {
            let _ = writeln!(out, "# TYPE sr_span_count_total counter");
            for (name, (count, _)) in &agg {
                let _ = writeln!(
                    out,
                    "sr_span_count_total{{name=\"{}\"}} {count}",
                    escape_label(name)
                );
            }
            let _ = writeln!(out, "# TYPE sr_span_duration_us_total counter");
            for (name, (_, total)) in &agg {
                let _ = writeln!(
                    out,
                    "sr_span_duration_us_total{{name=\"{}\"}} {}",
                    escape_label(name),
                    json_num(*total)
                );
            }
        }
        out
    }
}

/// Counter block shared by the full export and snapshot rendering.
fn render_counters(out: &mut String, counters: &BTreeMap<String, u64>) {
    let mut merged: BTreeMap<String, u64> = BTreeMap::new();
    for (name, &v) in counters {
        *merged.entry(metric_name(name, "_total")).or_insert(0) += v;
    }
    for (metric, v) in &merged {
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {v}");
    }
}

/// `sr_<sanitized name><suffix>` — the Prometheus metric name for a raw
/// dotted counter/histogram name.
fn metric_name(raw: &str, suffix: &str) -> String {
    let mut out = String::with_capacity(raw.len() + suffix.len() + 3);
    out.push_str("sr_");
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out.push_str(suffix);
    out
}

/// Escapes a string for use inside a Prometheus label value.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, span_with, Recorder};

    #[test]
    fn export_is_sorted_and_self_describing() {
        let r = MetricsRecorder::new();
        r.add("compile.zeta", 2);
        r.add("alloc_flow.augmentations", 1);
        r.add("compile.zeta", 3);
        let text = r.export_prometheus();
        let aug = text.find("sr_alloc_flow_augmentations_total 1").unwrap();
        let zeta = text.find("sr_compile_zeta_total 5").unwrap();
        assert!(aug < zeta, "counters must be name-sorted:\n{text}");
        assert!(text.contains("# TYPE sr_alloc_flow_augmentations_total counter"));
        // Byte-identical re-export of unchanged state.
        assert_eq!(text, r.export_prometheus());
    }

    #[test]
    fn histograms_export_as_summaries() {
        let r = MetricsRecorder::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            r.observe("sim.latency-us", v);
        }
        let text = r.export_prometheus();
        assert!(text.contains("# TYPE sr_sim_latency_us summary"));
        assert!(text.contains("sr_sim_latency_us{quantile=\"0.5\"} 2"));
        assert!(text.contains("sr_sim_latency_us{quantile=\"1\"} 4"));
        assert!(text.contains("sr_sim_latency_us_sum 10"));
        assert!(text.contains("sr_sim_latency_us_count 4"));
    }

    #[test]
    fn histogram_exposition_is_golden_and_rexports_byte_identically() {
        let r = MetricsRecorder::new();
        r.add("serve.admit", 2);
        for v in [1.0, 2.0, 3.0, 4.0] {
            r.observe("serve.admit_latency.fast", v);
        }
        let text = r.export_prometheus();
        assert_eq!(
            text,
            "# TYPE sr_serve_admit_total counter\n\
             sr_serve_admit_total 2\n\
             # TYPE sr_serve_admit_latency_fast summary\n\
             sr_serve_admit_latency_fast{quantile=\"0.5\"} 2\n\
             sr_serve_admit_latency_fast{quantile=\"0.95\"} 4\n\
             sr_serve_admit_latency_fast{quantile=\"1\"} 4\n\
             sr_serve_admit_latency_fast_sum 10\n\
             sr_serve_admit_latency_fast_count 4\n"
        );
        // Byte-identical re-export of unchanged state.
        assert_eq!(text, r.export_prometheus());
    }

    #[test]
    fn spans_export_labelled_totals() {
        let r = MetricsRecorder::new();
        {
            let _a = span(&r, "compile");
            let _b = span_with(&r, "alloc \"lp\"", String::new);
        }
        let text = r.export_prometheus();
        assert!(text.contains("sr_span_count_total{name=\"compile\"} 1"));
        assert!(text.contains("sr_span_count_total{name=\"alloc \\\"lp\\\"\"} 1"));
        assert!(text.contains("sr_span_duration_us_total{name=\"compile\"}"));
    }

    #[test]
    fn snapshot_delta_reports_increments_only() {
        let r = MetricsRecorder::new();
        r.add("a", 5);
        r.add("b", 1);
        let before = r.counter_snapshot();
        r.add("a", 2);
        r.add("c", 7);
        let delta = r.counter_snapshot().delta_since(&before);
        let got: Vec<(&str, u64)> = delta
            .counters()
            .iter()
            .map(|(k, &v)| (k.as_str(), v))
            .collect();
        // `b` did not move, so it is omitted; `c` is new and reports fully.
        assert_eq!(got, vec![("a", 2), ("c", 7)]);
        let text = delta.export_prometheus();
        assert!(text.contains("sr_a_total 2"));
        assert!(text.contains("sr_c_total 7"));
        assert!(!text.contains("sr_b_total"));
        // No movement at all renders as empty.
        let same = r.counter_snapshot();
        assert!(same.delta_since(&same).export_prometheus().is_empty());
    }

    #[test]
    fn names_sanitize_and_merge() {
        let r = MetricsRecorder::new();
        r.add("diag.rows", 1);
        r.add("diag/rows", 2);
        let text = r.export_prometheus();
        // Both raw names sanitize to the same metric and merge by summing.
        assert!(text.contains("sr_diag_rows_total 3"));
        assert_eq!(text.matches("# TYPE sr_diag_rows_total").count(), 1);
    }
}
