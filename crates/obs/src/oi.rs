//! The **output-inconsistency analyzer**: a pure function over a
//! [`SimEvent`] stream that reconstructs per-invocation output timestamps
//! and diagnoses *where* and *why* the inter-output interval deviates from
//! `τ_in`.
//!
//! The paper's §3 Claim is that wormhole routing's FCFS link arbitration
//! lets a message of invocation `j` stall behind a message of an *earlier*
//! invocation, perturbing `δ_j` away from `τ_in`, while scheduled routing
//! holds `δ_j = τ_in` exactly. Because the wormhole engine and the
//! scheduled-routing replay narrate runs as the same event stream, one call
//! to [`analyze_oi`] turns either into the same inspectable report:
//! interval order statistics, worst deviation from the period, per-message
//! deadline slack, and the per-link blocking chain behind every stall
//! (which message of which invocation held the channel).

use crate::events::{SimEvent, SimEventKind, NO_ID};
use crate::{percentile, Summary};

/// One header stall: who waited, on which channel, for how long, and which
/// earlier flight held the channel when the wait began.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stall {
    /// The waiting message.
    pub message: u32,
    /// The waiting message's invocation.
    pub invocation: u32,
    /// The contested directed channel (`2·link + direction`).
    pub channel: u32,
    /// When the wait began, µs.
    pub at_us: f64,
    /// How long the wait lasted, µs (up to the end of the stream for a
    /// stall that never resolved — a deadlocked flight).
    pub blocked_us: f64,
    /// The message holding the channel when the wait began, or [`NO_ID`] if
    /// the holder was not visible in the (possibly truncated) stream.
    pub holder_message: u32,
    /// The holder's invocation.
    pub holder_invocation: u32,
    /// Whether the waiter eventually acquired the channel.
    pub resolved: bool,
}

impl Stall {
    /// The §3 signature: the channel was held by a *different invocation's*
    /// message — cross-invocation contention, the mechanism behind OI.
    pub fn is_cross_invocation(&self) -> bool {
        self.holder_message != NO_ID && self.holder_invocation != self.invocation
    }
}

/// Per-message deadline-slack summary across invocations. A message's slack
/// in invocation `j` is `τ_in − residence` (residence = delivery −
/// injection): how much later it could have been delivered without eating
/// into the next invocation's window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageSlack {
    /// The message.
    pub message: u32,
    /// Complete flights observed (injection and delivery both in-stream).
    pub flights: usize,
    /// Worst (smallest) slack across flights, µs. Negative means the
    /// message overran its invocation's window.
    pub min_slack_us: f64,
    /// Longest network residence across flights, µs.
    pub max_residence_us: f64,
}

/// The OI analyzer's verdict over one run. Produced by [`analyze_oi`].
#[derive(Debug, Clone, PartialEq)]
pub struct OiReport {
    /// The input period `τ_in`, µs.
    pub period_us: f64,
    /// Invocations skipped at the front (pipeline fill).
    pub warmup: usize,
    /// Output timestamps of the analyzed invocations (a gap in the
    /// invocation sequence — deadlock — truncates the series), µs.
    pub outputs: Vec<f64>,
    /// Inter-output intervals `δ_j` between consecutive analyzed
    /// invocations, µs.
    pub intervals: Vec<f64>,
    /// Order statistics of the intervals (`None` with fewer than two
    /// outputs).
    pub interval_summary: Option<Summary>,
    /// Smallest observed interval, µs (0 when none).
    pub min_interval_us: f64,
    /// Largest deviation `|δ_j − τ_in|`, µs.
    pub max_deviation_us: f64,
    /// Per-message deadline slack, in message-id order.
    pub slack: Vec<MessageSlack>,
    /// Every header stall, in stream order, with its blocking culprit.
    pub stalls: Vec<Stall>,
}

impl OiReport {
    /// Whether every analyzed interval equals `τ_in` within `tol` — the
    /// paper's Eq. (1) throughput-constancy test.
    pub fn is_consistent(&self, tol: f64) -> bool {
        self.max_deviation_us <= tol
    }

    /// Number of stalls caused by a different invocation's message.
    pub fn cross_invocation_stalls(&self) -> usize {
        self.stalls
            .iter()
            .filter(|s| s.is_cross_invocation())
            .count()
    }

    /// A compact human-readable rendering of the report (used by the demo
    /// example and the `report` subcommand's text output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "OI report: τ_in = {} µs, {} outputs after warmup {}",
            self.period_us,
            self.outputs.len(),
            self.warmup
        );
        match &self.interval_summary {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "  intervals δ_j : min {:.2}  p50 {:.2}  p95 {:.2}  max {:.2} µs",
                    self.min_interval_us, s.p50, s.p95, s.max
                );
                let _ = writeln!(
                    out,
                    "  max |δ − τ_in|: {:.2} µs -> {}",
                    self.max_deviation_us,
                    if self.is_consistent(1e-6) {
                        "consistent"
                    } else {
                        "OUTPUT INCONSISTENCY"
                    }
                );
            }
            None => {
                let _ = writeln!(out, "  too few outputs to measure an interval");
            }
        }
        let cross = self.cross_invocation_stalls();
        let _ = writeln!(
            out,
            "  stalls        : {} total, {} cross-invocation",
            self.stalls.len(),
            cross
        );
        for s in self
            .stalls
            .iter()
            .filter(|s| s.is_cross_invocation())
            .take(4)
        {
            let _ = writeln!(
                out,
                "    M{}/i{} blocked {:.2} µs on ch{} by M{}/i{}{}",
                s.message,
                s.invocation,
                s.blocked_us,
                s.channel,
                s.holder_message,
                s.holder_invocation,
                if s.resolved { "" } else { " (never resolved)" }
            );
        }
        for ms in &self.slack {
            let _ = writeln!(
                out,
                "  slack M{}     : min {:.2} µs over {} flights (max residence {:.2} µs)",
                ms.message, ms.min_slack_us, ms.flights, ms.max_residence_us
            );
        }
        out
    }
}

/// Analyzes an event stream (from the wormhole engine or the SR replay)
/// against input period `period_us`, skipping the first `warmup`
/// invocations of the output series (pipeline fill), and returns the
/// [`OiReport`].
///
/// The stream need not be sorted; events are stably ordered by timestamp
/// first (ties keep emission order). Truncated streams (a full
/// [`RingEventSink`](crate::RingEventSink)) degrade gracefully: flights
/// missing their injection or delivery are skipped from the slack table and
/// stalls without a visible holder carry [`NO_ID`].
pub fn analyze_oi(events: &[SimEvent], period_us: f64, warmup: usize) -> OiReport {
    let mut ordered: Vec<&SimEvent> = events.iter().collect();
    ordered.sort_by(|a, b| a.time_us.total_cmp(&b.time_us));
    let end_time = ordered.last().map_or(0.0, |e| e.time_us);

    // --- Output series -----------------------------------------------------
    let mut outputs_by_inv: std::collections::BTreeMap<u32, f64> =
        std::collections::BTreeMap::new();
    for e in &ordered {
        if e.kind == SimEventKind::OutputProduced {
            outputs_by_inv.entry(e.invocation).or_insert(e.time_us);
        }
    }
    // Consecutive invocations from `warmup`; a gap (deadlock) truncates.
    let mut outputs = Vec::new();
    let mut next = warmup as u32;
    while let Some(&t) = outputs_by_inv.get(&next) {
        outputs.push(t);
        next += 1;
    }
    let intervals: Vec<f64> = outputs.windows(2).map(|w| w[1] - w[0]).collect();
    let interval_summary = if intervals.is_empty() {
        None
    } else {
        Some(Summary::of(&intervals))
    };
    let min_interval_us = if intervals.is_empty() {
        0.0
    } else {
        let mut sorted = intervals.clone();
        sorted.sort_by(f64::total_cmp);
        percentile(&sorted, 0.0)
    };
    let max_deviation_us = intervals
        .iter()
        .map(|d| (d - period_us).abs())
        .fold(0.0, f64::max);

    // --- Per-message deadline slack ---------------------------------------
    let mut injected: std::collections::HashMap<(u32, u32), f64> = std::collections::HashMap::new();
    let mut slack_map: std::collections::BTreeMap<u32, MessageSlack> =
        std::collections::BTreeMap::new();
    for e in &ordered {
        match e.kind {
            SimEventKind::MessageInjected => {
                injected
                    .entry((e.message, e.invocation))
                    .or_insert(e.time_us);
            }
            SimEventKind::FlitDelivered => {
                if let Some(t0) = injected.remove(&(e.message, e.invocation)) {
                    let residence = e.time_us - t0;
                    let slack = period_us - residence;
                    let entry = slack_map.entry(e.message).or_insert(MessageSlack {
                        message: e.message,
                        flights: 0,
                        min_slack_us: f64::INFINITY,
                        max_residence_us: f64::NEG_INFINITY,
                    });
                    entry.flights += 1;
                    entry.min_slack_us = entry.min_slack_us.min(slack);
                    entry.max_residence_us = entry.max_residence_us.max(residence);
                }
            }
            _ => {}
        }
    }

    // --- Blocking chains ----------------------------------------------------
    // Current holders per channel (acquire order = FCFS grant order) and
    // pending header stalls awaiting their acquire.
    let mut holders: std::collections::HashMap<u32, Vec<(u32, u32)>> =
        std::collections::HashMap::new();
    let mut pending: Vec<(u32, u32, u32, f64, u32, u32)> = Vec::new();
    let mut stalls = Vec::new();
    for e in &ordered {
        match e.kind {
            SimEventKind::HeaderBlocked => {
                let (hm, hi) = holders
                    .get(&e.channel)
                    .and_then(|h| h.first())
                    .copied()
                    .unwrap_or((NO_ID, NO_ID));
                pending.push((e.message, e.invocation, e.channel, e.time_us, hm, hi));
            }
            SimEventKind::LinkAcquired => {
                if let Some(pos) = pending.iter().position(|&(m, i, c, ..)| {
                    m == e.message && i == e.invocation && c == e.channel
                }) {
                    let (m, i, c, t0, hm, hi) = pending.remove(pos);
                    stalls.push(Stall {
                        message: m,
                        invocation: i,
                        channel: c,
                        at_us: t0,
                        blocked_us: e.time_us - t0,
                        holder_message: hm,
                        holder_invocation: hi,
                        resolved: true,
                    });
                }
                holders
                    .entry(e.channel)
                    .or_default()
                    .push((e.message, e.invocation));
            }
            SimEventKind::LinkReleased => {
                if let Some(h) = holders.get_mut(&e.channel) {
                    if let Some(pos) = h
                        .iter()
                        .position(|&(m, i)| m == e.message && i == e.invocation)
                    {
                        h.remove(pos);
                    }
                }
            }
            _ => {}
        }
    }
    // Stalls that never resolved: deadlocked (or truncated) flights.
    for (m, i, c, t0, hm, hi) in pending {
        stalls.push(Stall {
            message: m,
            invocation: i,
            channel: c,
            at_us: t0,
            blocked_us: end_time - t0,
            holder_message: hm,
            holder_invocation: hi,
            resolved: false,
        });
    }
    stalls.sort_by(|a, b| a.at_us.total_cmp(&b.at_us));

    OiReport {
        period_us,
        warmup,
        outputs,
        intervals,
        interval_summary,
        min_interval_us,
        max_deviation_us,
        slack: slack_map.into_values().collect(),
        stalls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, kind: SimEventKind, m: u32, inv: u32, ch: u32) -> SimEvent {
        SimEvent {
            time_us: t,
            kind,
            message: m,
            invocation: inv,
            channel: ch,
        }
    }

    /// Two invocations: i0's message holds channel 0, i1's message stalls
    /// behind it — the §3 cross-invocation mechanism in miniature.
    fn contended_stream() -> Vec<SimEvent> {
        vec![
            ev(0.0, SimEventKind::MessageInjected, 0, 0, NO_ID),
            ev(0.0, SimEventKind::LinkAcquired, 0, 0, 0),
            ev(10.0, SimEventKind::MessageInjected, 0, 1, NO_ID),
            ev(10.0, SimEventKind::HeaderBlocked, 0, 1, 0),
            ev(30.0, SimEventKind::LinkReleased, 0, 0, 0),
            ev(30.0, SimEventKind::FlitDelivered, 0, 0, NO_ID),
            ev(30.0, SimEventKind::LinkAcquired, 0, 1, 0),
            ev(31.0, SimEventKind::OutputProduced, NO_ID, 0, NO_ID),
            ev(60.0, SimEventKind::LinkReleased, 0, 1, 0),
            ev(60.0, SimEventKind::FlitDelivered, 0, 1, NO_ID),
            ev(61.0, SimEventKind::OutputProduced, NO_ID, 1, NO_ID),
        ]
    }

    #[test]
    fn detects_cross_invocation_stall() {
        let r = analyze_oi(&contended_stream(), 10.0, 0);
        assert_eq!(r.outputs, vec![31.0, 61.0]);
        assert_eq!(r.intervals, vec![30.0]);
        assert!(!r.is_consistent(1e-6));
        assert!((r.max_deviation_us - 20.0).abs() < 1e-9);
        assert_eq!(r.stalls.len(), 1);
        let s = &r.stalls[0];
        assert!(s.is_cross_invocation());
        assert_eq!((s.message, s.invocation), (0, 1));
        assert_eq!((s.holder_message, s.holder_invocation), (0, 0));
        assert!((s.blocked_us - 20.0).abs() < 1e-9);
        assert!(s.resolved);
        assert_eq!(r.cross_invocation_stalls(), 1);
        // Slack: i0 residence 30 => slack -20; i1 residence 50 => slack -40.
        assert_eq!(r.slack.len(), 1);
        assert_eq!(r.slack[0].flights, 2);
        assert!((r.slack[0].min_slack_us - (10.0 - 50.0)).abs() < 1e-9);
        assert!((r.slack[0].max_residence_us - 50.0).abs() < 1e-9);
        let text = r.render();
        assert!(text.contains("OUTPUT INCONSISTENCY"), "{text}");
        assert!(text.contains("by M0/i0"), "{text}");
    }

    #[test]
    fn constant_spacing_is_consistent() {
        let events: Vec<SimEvent> = (0..5)
            .map(|j| {
                ev(
                    100.0 + 50.0 * j as f64,
                    SimEventKind::OutputProduced,
                    NO_ID,
                    j,
                    NO_ID,
                )
            })
            .collect();
        let r = analyze_oi(&events, 50.0, 1);
        assert_eq!(r.outputs.len(), 4);
        assert!(r.is_consistent(1e-9));
        assert_eq!(r.min_interval_us, 50.0);
        assert_eq!(r.interval_summary.unwrap().max, 50.0);
        assert!(r.render().contains("consistent"));
    }

    #[test]
    fn gap_in_invocations_truncates_series() {
        // Invocation 1 never completes (deadlock): only i0 is analyzable.
        let events = vec![
            ev(10.0, SimEventKind::OutputProduced, NO_ID, 0, NO_ID),
            ev(90.0, SimEventKind::OutputProduced, NO_ID, 2, NO_ID),
        ];
        let r = analyze_oi(&events, 40.0, 0);
        assert_eq!(r.outputs, vec![10.0]);
        assert!(r.intervals.is_empty());
        assert!(r.interval_summary.is_none());
        assert_eq!(r.max_deviation_us, 0.0);
        assert!(r.render().contains("too few outputs"));
    }

    #[test]
    fn unresolved_stall_reported_as_deadlock() {
        let events = vec![
            ev(0.0, SimEventKind::LinkAcquired, 0, 0, 5),
            ev(2.0, SimEventKind::HeaderBlocked, 1, 1, 5),
            ev(50.0, SimEventKind::OutputProduced, NO_ID, 0, NO_ID),
        ];
        let r = analyze_oi(&events, 10.0, 0);
        assert_eq!(r.stalls.len(), 1);
        assert!(!r.stalls[0].resolved);
        assert!((r.stalls[0].blocked_us - 48.0).abs() < 1e-9);
        assert!(r.stalls[0].is_cross_invocation());
    }

    #[test]
    fn empty_stream_yields_empty_report() {
        let r = analyze_oi(&[], 10.0, 0);
        assert!(r.outputs.is_empty());
        assert!(r.stalls.is_empty());
        assert!(r.slack.is_empty());
        assert!(r.is_consistent(0.0));
    }

    #[test]
    fn stall_without_visible_holder_gets_no_id() {
        // Truncated stream: the acquire that precedes this block was lost.
        let events = vec![
            ev(2.0, SimEventKind::HeaderBlocked, 1, 1, 5),
            ev(4.0, SimEventKind::LinkAcquired, 1, 1, 5),
        ];
        let r = analyze_oi(&events, 10.0, 0);
        assert_eq!(r.stalls.len(), 1);
        assert_eq!(r.stalls[0].holder_message, NO_ID);
        assert!(!r.stalls[0].is_cross_invocation());
    }
}
