//! `srsched` — command-line front end for the scheduled-routing stack.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match sr_cli::parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut out = String::new();
    match sr_cli::run(&opts, &mut out) {
        Ok(()) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            print!("{out}");
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
