//! Specification parsing and command logic behind the `srsched` binary.
//!
//! The CLI lets a user describe a platform and workload as short spec
//! strings and run the scheduled-routing compiler or the wormhole simulator
//! against them:
//!
//! ```text
//! srsched compile --topo cube:6 --tfg dvb:8 --bandwidth 64 --period 100
//! srsched simulate --topo torus:8x8 --tfg dvb:8 --bandwidth 128 --period 62.5
//! srsched sweep --topo ghc:4x4x4 --tfg dvb:8 --bandwidth 64
//! srsched info --topo mesh:8x8 --tfg chain:5
//! ```
//!
//! Spec grammar:
//!
//! * topology: `cube:<dims>`, `ghc:<r1>x<r2>x…`, `torus:<k1>x<k2>x…`,
//!   `mesh:<k1>x<k2>x…`
//! * TFG: `dvb:<models>` (uniform task sizes), `dvb-raw:<models>`,
//!   `chain:<stages>`, `diamond:<width>`, `random:<seed>`
//! * allocation: `greedy`, `random:<seed>`, `roundrobin`, `search:<seed>`

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use sr::prelude::*;
use sr::tfg::generators;

pub mod report;

/// Errors from parsing spec strings or command lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl SpecError {
    fn new(msg: impl Into<String>) -> Self {
        SpecError(msg.into())
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for SpecError {}

/// Parses a topology spec like `cube:6`, `ghc:4x4x4`, `torus:8x8`,
/// `mesh:4x4`.
///
/// # Errors
///
/// Returns [`SpecError`] for unknown families, malformed extents, or
/// topologies the constructor rejects.
pub fn parse_topology(spec: &str) -> Result<Box<dyn Topology>, SpecError> {
    let (family, rest) = spec
        .split_once(':')
        .ok_or_else(|| SpecError::new(format!("topology spec '{spec}' needs 'family:params'")))?;
    let dims = |s: &str| -> Result<Vec<usize>, SpecError> {
        s.split('x')
            .map(|p| {
                p.parse::<usize>()
                    .map_err(|_| SpecError::new(format!("bad extent '{p}' in '{spec}'")))
            })
            .collect()
    };
    let err = |e: sr::topology::TopologyError| SpecError::new(format!("{spec}: {e}"));
    match family {
        "cube" => {
            let d: usize = rest
                .parse()
                .map_err(|_| SpecError::new(format!("bad dimension count '{rest}'")))?;
            Ok(Box::new(GeneralizedHypercube::binary(d).map_err(err)?))
        }
        "ghc" => Ok(Box::new(
            GeneralizedHypercube::new(&dims(rest)?).map_err(err)?,
        )),
        "torus" => Ok(Box::new(Torus::new(&dims(rest)?).map_err(err)?)),
        "mesh" => Ok(Box::new(
            sr::topology::Mesh::new(&dims(rest)?).map_err(err)?,
        )),
        other => Err(SpecError::new(format!(
            "unknown topology family '{other}' (expected cube|ghc|torus|mesh)"
        ))),
    }
}

/// Parses a TFG spec like `dvb:8`, `dvb-raw:8`, `chain:5`, `diamond:4`,
/// `random:42`, or `file:path.tfg` (the `sr_tfg::from_text` format).
///
/// # Errors
///
/// Returns [`SpecError`] for unknown kinds or malformed parameters.
pub fn parse_tfg(spec: &str) -> Result<TaskFlowGraph, SpecError> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| SpecError::new(format!("tfg spec '{spec}' needs 'kind:param'")))?;
    if kind == "file" {
        let text = std::fs::read_to_string(rest)
            .map_err(|e| SpecError::new(format!("cannot read '{rest}': {e}")))?;
        return sr::tfg::from_text(&text).map_err(|e| SpecError::new(format!("{rest}: {e}")));
    }
    let n: u64 = rest
        .parse()
        .map_err(|_| SpecError::new(format!("bad parameter '{rest}' in '{spec}'")))?;
    match kind {
        "dvb" => {
            if n == 0 {
                return Err(SpecError::new("dvb needs at least 1 model"));
            }
            Ok(dvb_uniform(n as usize))
        }
        "dvb-raw" => {
            if n == 0 {
                return Err(SpecError::new("dvb-raw needs at least 1 model"));
            }
            Ok(dvb(n as usize))
        }
        "chain" => {
            if n == 0 {
                return Err(SpecError::new("chain needs at least 1 stage"));
            }
            Ok(generators::chain(n as usize, 1925, 1536))
        }
        "diamond" => {
            if n == 0 {
                return Err(SpecError::new("diamond needs at least 1 branch"));
            }
            Ok(generators::diamond(n as usize, 1925, 1536))
        }
        "random" => Ok(generators::layered_random(
            n,
            &generators::LayeredParams::default(),
        )),
        other => Err(SpecError::new(format!(
            "unknown tfg kind '{other}' (expected dvb|dvb-raw|chain|diamond|random|file)"
        ))),
    }
}

/// Parses an allocation spec like `greedy`, `scatter:7` (one task per
/// node), `random:7` (may co-locate), `roundrobin`, `search:3`.
///
/// # Errors
///
/// Returns [`SpecError`] for unknown strategies or malformed seeds.
pub fn parse_allocation(
    spec: &str,
    tfg: &TaskFlowGraph,
    topo: &dyn Topology,
) -> Result<Allocation, SpecError> {
    let (kind, seed) = match spec.split_once(':') {
        Some((k, s)) => {
            let seed: u64 = s
                .parse()
                .map_err(|_| SpecError::new(format!("bad seed '{s}' in '{spec}'")))?;
            (k, seed)
        }
        None => (spec, 0),
    };
    match kind {
        "greedy" => Ok(sr::mapping::greedy(tfg, topo)),
        "scatter" => sr::mapping::random_distinct(tfg, topo, seed)
            .map_err(|e| SpecError::new(format!("{spec}: {e}"))),
        "random" => Ok(sr::mapping::random(tfg, topo, seed)),
        "roundrobin" => Ok(sr::mapping::round_robin(tfg, topo)),
        "search" => Ok(sr::mapping::local_search(tfg, topo, seed, 500)),
        "codesign" => {
            // Schedulability-driven co-design (paper §7): expensive but the
            // placements it finds are chosen for compilable utilization.
            let timing = sr::tfg::Timing::calibrated_dvb(64.0);
            let period = timing.longest_task(tfg) * 2.0;
            let start = sr::mapping::random_distinct(tfg, topo, seed)
                .unwrap_or_else(|_| sr::mapping::random(tfg, topo, seed));
            Ok(sr::core::co_design(
                topo,
                tfg,
                &timing,
                period,
                start,
                40,
                seed,
                &sr::core::CompileConfig::default(),
            )
            .allocation)
        }
        other => Err(SpecError::new(format!(
            "unknown allocation '{other}' (expected greedy|scatter:<seed>|random:<seed>|roundrobin|search:<seed>|codesign:<seed>)"
        ))),
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Subcommand: `compile`, `simulate`, `sweep`, or `info`.
    pub command: String,
    /// Topology spec (default `cube:6`).
    pub topo: String,
    /// TFG spec (default `dvb:8`).
    pub tfg: String,
    /// Allocation spec (default `scatter:7`).
    pub alloc: String,
    /// Link bandwidth, bytes/µs (default 64).
    pub bandwidth: f64,
    /// Input period, µs (default `τ_c / 0.5`).
    pub period: Option<f64>,
    /// Clock-skew guard time, µs.
    pub guard: f64,
    /// Worker threads for the compile feedback search (0 = auto).
    pub parallelism: usize,
    /// Message–interval allocation backend (`--alloc-engine simplex|flow`).
    pub alloc_engine: AllocEngine,
    /// Fabric bands for partitioned path search/allocation (0/1 = flat).
    pub partition: usize,
    /// Virtual channels for simulation.
    pub virtual_channels: usize,
    /// Adaptive-routing path cap for simulation (1 = deterministic).
    pub adaptive: usize,
    /// Dump full node switching schedules after compiling.
    pub dump: bool,
    /// Render per-link ASCII timelines after compiling.
    pub timeline: bool,
    /// Write the compiled schedule as JSON to this path.
    pub json: Option<String>,
    /// Write a Chrome-tracing JSON of the run to this path
    /// (load via `chrome://tracing` or <https://ui.perfetto.dev>).
    pub trace_out: Option<String>,
    /// Print the collected counters/histograms/span totals to stderr.
    pub metrics: bool,
    /// Append a JSONL flight-recorder journal (meta, counters, spans,
    /// events) to this path, with bounded rotation.
    pub journal: Option<String>,
    /// Write the Prometheus text exposition of the metrics to this path.
    pub prom: Option<String>,
    /// For `report`: replay the wormhole event stream from this journal
    /// instead of running the simulator.
    pub from_journal: Option<String>,
    /// Pin the compiler's capacity-scale ladder to this single scale
    /// (diagnostics: forces the allocation to answer at one rung).
    pub cap_scale: Option<f64>,
    /// Spare-capacity reservation ε for the compiler (headroom for repair).
    pub spare: f64,
    /// Link ids to fail (`faults --fail-links 3,17`).
    pub fail_links: Vec<usize>,
    /// Node ids to fail (`faults --fail-nodes 5`).
    pub fail_nodes: Vec<usize>,
    /// Attempt incremental repair after injecting the faults.
    pub repair: bool,
    /// Sweep random link failures up to this count (`faults --sweep 3`).
    pub sweep_k: Option<usize>,
    /// Output path for the `report` subcommand's HTML.
    pub out: String,
    /// For `serve`: bind a Unix socket at this path.
    pub socket: Option<String>,
    /// For `serve`: speak the framed protocol on stdin/stdout.
    pub stdio: bool,
    /// For `serve`: bind the HTTP exposition listener (`/metrics`,
    /// `/healthz`, `/tenants`) at this address (e.g. `127.0.0.1:9464`).
    pub http: Option<String>,
    /// Positional input file (the `serve-replay` audit journal).
    pub input: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            command: String::new(),
            topo: "cube:6".into(),
            tfg: "dvb:8".into(),
            alloc: "scatter:7".into(),
            bandwidth: 64.0,
            period: None,
            guard: 0.0,
            parallelism: 0,
            alloc_engine: AllocEngine::Simplex,
            partition: 0,
            virtual_channels: 1,
            adaptive: 1,
            dump: false,
            timeline: false,
            json: None,
            trace_out: None,
            metrics: false,
            journal: None,
            prom: None,
            from_journal: None,
            cap_scale: None,
            spare: 0.0,
            fail_links: Vec::new(),
            fail_nodes: Vec::new(),
            repair: false,
            sweep_k: None,
            out: "report.html".into(),
            socket: None,
            stdio: false,
            http: None,
            input: None,
        }
    }
}

/// Parses `srsched` arguments (without the program name).
///
/// # Errors
///
/// Returns [`SpecError`] for unknown flags/commands or unparsable values.
pub fn parse_args(args: &[String]) -> Result<Options, SpecError> {
    let mut opts = Options::default();
    let mut it = args.iter();
    opts.command = it.next().ok_or_else(|| SpecError::new(USAGE))?.to_string();
    if !matches!(
        opts.command.as_str(),
        "compile"
            | "simulate"
            | "sweep"
            | "info"
            | "minperiod"
            | "faults"
            | "report"
            | "explain"
            | "serve"
            | "serve-replay"
    ) {
        return Err(SpecError::new(format!(
            "unknown command '{}'\n{USAGE}",
            opts.command
        )));
    }
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, SpecError> {
            it.next()
                .map(String::from)
                .ok_or_else(|| SpecError::new(format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--topo" => opts.topo = value("--topo")?,
            "--tfg" => opts.tfg = value("--tfg")?,
            "--alloc" => opts.alloc = value("--alloc")?,
            "--bandwidth" => {
                opts.bandwidth = value("--bandwidth")?
                    .parse()
                    .map_err(|_| SpecError::new("bad --bandwidth"))?
            }
            "--period" => {
                opts.period = Some(
                    value("--period")?
                        .parse()
                        .map_err(|_| SpecError::new("bad --period"))?,
                )
            }
            "--guard" => {
                opts.guard = value("--guard")?
                    .parse()
                    .map_err(|_| SpecError::new("bad --guard"))?
            }
            "--parallelism" => {
                opts.parallelism = value("--parallelism")?
                    .parse()
                    .map_err(|_| SpecError::new("bad --parallelism"))?
            }
            "--alloc-engine" => {
                opts.alloc_engine = match value("--alloc-engine")?.as_str() {
                    "simplex" => AllocEngine::Simplex,
                    "flow" => AllocEngine::Flow,
                    other => {
                        return Err(SpecError::new(format!(
                            "bad --alloc-engine '{other}' (expected simplex|flow)"
                        )))
                    }
                }
            }
            "--partition" => {
                opts.partition = value("--partition")?
                    .parse()
                    .map_err(|_| SpecError::new("bad --partition"))?
            }
            "--vc" => {
                opts.virtual_channels = value("--vc")?
                    .parse()
                    .map_err(|_| SpecError::new("bad --vc"))?
            }
            "--adaptive" => {
                opts.adaptive = value("--adaptive")?
                    .parse()
                    .map_err(|_| SpecError::new("bad --adaptive"))?
            }
            "--spare" => {
                opts.spare = value("--spare")?
                    .parse()
                    .map_err(|_| SpecError::new("bad --spare"))?;
                if !(0.0..1.0).contains(&opts.spare) {
                    return Err(SpecError::new("--spare must be in [0, 1)"));
                }
            }
            "--fail-links" => opts.fail_links = parse_id_list(&value("--fail-links")?)?,
            "--fail-nodes" => opts.fail_nodes = parse_id_list(&value("--fail-nodes")?)?,
            "--repair" => opts.repair = true,
            "--sweep" => {
                opts.sweep_k = Some(
                    value("--sweep")?
                        .parse()
                        .map_err(|_| SpecError::new("bad --sweep"))?,
                )
            }
            "--dump" => opts.dump = true,
            "--timeline" => opts.timeline = true,
            "--json" => opts.json = Some(value("--json")?),
            "--out" => opts.out = value("--out")?,
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--metrics" => opts.metrics = true,
            "--journal" => opts.journal = Some(value("--journal")?),
            "--prom" => opts.prom = Some(value("--prom")?),
            "--from-journal" => opts.from_journal = Some(value("--from-journal")?),
            "--socket" => opts.socket = Some(value("--socket")?),
            "--stdio" => opts.stdio = true,
            "--http" => opts.http = Some(value("--http")?),
            "--cap-scale" => {
                let s: f64 = value("--cap-scale")?
                    .parse()
                    .map_err(|_| SpecError::new("bad --cap-scale"))?;
                if !(s > 0.0 && s <= 1.0) {
                    return Err(SpecError::new("--cap-scale must be in (0, 1]"));
                }
                opts.cap_scale = Some(s);
            }
            other => {
                // `serve-replay` takes its journal as a bare positional.
                if opts.command == "serve-replay" && !other.starts_with('-') && opts.input.is_none()
                {
                    opts.input = Some(other.to_string());
                } else {
                    return Err(SpecError::new(format!("unknown flag '{other}'\n{USAGE}")));
                }
            }
        }
    }
    Ok(opts)
}

/// Parses a comma-separated id list like `3,17,40`.
fn parse_id_list(s: &str) -> Result<Vec<usize>, SpecError> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.parse::<usize>()
                .map_err(|_| SpecError::new(format!("bad id '{p}' in '{s}'")))
        })
        .collect()
}

/// Usage text shown for malformed command lines.
pub const USAGE: &str = "usage: srsched \
<compile|simulate|sweep|info|minperiod|faults|report|explain|serve|serve-replay> \
[--topo SPEC] [--tfg SPEC] [--alloc SPEC] [--bandwidth B] [--period T] \
[--guard G] [--spare E] [--parallelism N] [--alloc-engine simplex|flow] [--partition N] \
[--vc N] [--adaptive P] [--cap-scale S] \
[--dump] [--timeline] \
[--json FILE] [--trace-out FILE] [--metrics] [--journal FILE] [--prom FILE] [--out FILE] \
[--from-journal FILE] \
[--fail-links L1,L2] [--fail-nodes N1,N2] [--repair] [--sweep K] \
[--stdio] [--socket PATH] [--http ADDR] [FILE]";

/// Runs a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Propagates spec errors and fatal harness errors; schedulability failures
/// are *reported*, not raised.
pub fn run(opts: &Options, out: &mut dyn fmt::Write) -> Result<(), Box<dyn Error>> {
    let topo = parse_topology(&opts.topo)?;
    let tfg = parse_tfg(&opts.tfg)?;
    let alloc = parse_allocation(&opts.alloc, &tfg, topo.as_ref())?;
    let timing = Timing::calibrated_dvb(opts.bandwidth);
    let tau_c = timing.longest_task(&tfg);
    let period = opts.period.unwrap_or(tau_c * 2.0);

    // One recorder per invocation; it stays a no-op (never recording,
    // never allocating) unless an observability output asked for it.
    let recording =
        opts.metrics || opts.trace_out.is_some() || opts.journal.is_some() || opts.prom.is_some();
    let metrics = MetricsRecorder::new();
    let rec: &dyn Recorder = if recording { &metrics } else { &sr::obs::NOOP };

    match opts.command.as_str() {
        "info" => {
            let stats = sr::topology::TopologyStats::compute(topo.as_ref(), 32);
            writeln!(
                out,
                "topology : {} ({} nodes, {} links, degree {})",
                topo.name(),
                topo.num_nodes(),
                topo.num_links(),
                topo.degree()
            )?;
            writeln!(
                out,
                "           diameter {}, mean distance {:.2}, mean shortest paths {:.1} (cap 32)",
                stats.diameter, stats.mean_distance, stats.mean_alternative_paths
            )?;
            writeln!(
                out,
                "tfg      : {} tasks, {} messages, {} bytes/invocation",
                tfg.num_tasks(),
                tfg.num_messages(),
                tfg.total_bytes()
            )?;
            writeln!(
                out,
                "timing   : τ_c = {tau_c} µs, τ_m = {} µs, Λ = {} µs",
                timing.longest_message(&tfg),
                timing.critical_path(&tfg)
            )?;
            writeln!(
                out,
                "alloc    : {} distinct nodes, Σ bytes×hops = {}",
                alloc.nodes_used(),
                alloc.comm_cost(&tfg, topo.as_ref())
            )?;
        }
        "compile" => {
            let config = compile_config(opts);
            let compiled = sr::core::compile_with_recorder(
                topo.as_ref(),
                &tfg,
                &alloc,
                &timing,
                period,
                &config,
                rec,
            );
            match compiled {
                Ok(s) => {
                    verify(&s, topo.as_ref(), &tfg)?;
                    writeln!(out, "schedule compiled and verified")?;
                    writeln!(out, "  period      : {} µs", s.period())?;
                    writeln!(
                        out,
                        "  latency     : {} µs ({:.3}×Λ)",
                        s.latency(),
                        s.latency() / timing.critical_path(&tfg)
                    )?;
                    writeln!(
                        out,
                        "  utilization : {:.3} (baseline {:.3})",
                        s.peak_utilization(),
                        s.baseline_peak_utilization()
                    )?;
                    let sum = s.summary(topo.as_ref());
                    writeln!(
                        out,
                        "  segments    : {} ({} commands on {} CPs)",
                        sum.segments, sum.commands, sum.active_nodes
                    )?;
                    if let Some((link, frac)) = sum.busiest_link {
                        writeln!(
                            out,
                            "  busiest link: {link} at {:.0}% of the frame",
                            frac * 100.0
                        )?;
                    }
                    if let Some(path) = &opts.json {
                        std::fs::write(path, s.to_json())?;
                        writeln!(out, "  wrote JSON schedule to {path}")?;
                    }
                    if opts.timeline {
                        writeln!(out, "\nlink timelines:")?;
                        write!(out, "{}", s.render_timelines(topo.as_ref(), 64))?;
                    }
                    if opts.dump {
                        for ns in s.node_schedules() {
                            if ns.is_idle() {
                                continue;
                            }
                            writeln!(out, "  {}:", ns.node())?;
                            for c in ns.commands() {
                                writeln!(
                                    out,
                                    "    [{:>8.2}, {:>8.2}] {:?} -> {:?} ({})",
                                    c.start,
                                    c.end,
                                    c.connection.from,
                                    c.connection.to,
                                    tfg.message(c.message).name()
                                )?;
                            }
                        }
                    }
                }
                Err(e) => writeln!(out, "schedule infeasible: {e}")?,
            }
            // Observability output is written for failed compiles too —
            // the trace of an infeasible search is exactly what you want
            // to look at.
            write_observability(opts, &metrics, &[], out)?;
        }
        "explain" => {
            let config = compile_config(opts);
            let (compiled, diag) = sr::core::compile_diagnosed(
                topo.as_ref(),
                &tfg,
                &alloc,
                &timing,
                period,
                &config,
                rec,
            );
            if let Ok(s) = &compiled {
                verify(s, topo.as_ref(), &tfg)?;
            }
            write!(out, "{}", diag.render_text(topo.as_ref(), &tfg))?;
            write_observability(opts, &metrics, &[], out)?;
        }
        "minperiod" => {
            let config = compile_config(opts);
            match sr::core::find_min_period(
                topo.as_ref(),
                &tfg,
                &alloc,
                &timing,
                tau_c * 8.0,
                0.25,
                &config,
            ) {
                Ok(r) => {
                    writeln!(
                        out,
                        "minimum sustainable period: {:.2} µs \
                        (max throughput {:.4} invocations/ms)",
                        r.period,
                        1000.0 / r.period
                    )?;
                    writeln!(
                        out,
                        "  latency at that rate: {:.1} µs",
                        r.schedule.latency()
                    )?;
                    if let Some(below) = r.infeasible_below {
                        writeln!(out, "  infeasible at {below:.2} µs and below")?;
                    }
                }
                Err(e) => writeln!(out, "no feasible period found: {e}")?,
            }
        }
        "simulate" => {
            let sim = WormholeSim::new(topo.as_ref(), &tfg, &alloc, &timing)?
                .with_virtual_channels(opts.virtual_channels)?
                .with_adaptive_routing(opts.adaptive)?;
            let sim_cfg = SimConfig::default();
            // With --trace-out or --journal, capture the simulation event
            // stream so flit events land in the Chrome trace / the journal.
            let sink = (opts.trace_out.is_some() || opts.journal.is_some()).then(|| {
                RingEventSink::with_capacity(event_capacity(sim.routes(), sim_cfg.invocations))
            });
            let span = sr::obs::span_with(rec, "simulate", || format!("period={period}"));
            let res = match &sink {
                Some(s) => sim.run_with_events(period, &sim_cfg, s)?,
                None => sim.run(period, &sim_cfg)?,
            };
            drop(span);
            let sim_events = sink.map(|s| s.events()).unwrap_or_default();
            // The simulator is recorder-free by design; funnel its flight
            // trace into histograms here instead.
            if recording {
                rec.add("wormhole.flights", res.trace().flights().len() as u64);
                rec.add("wormhole.invocations", res.records().len() as u64);
                for f in res.trace().flights() {
                    rec.observe("wormhole.blocked_us", f.blocked());
                    rec.observe("wormhole.residence_us", f.residence());
                }
            }
            writeln!(
                out,
                "wormhole simulation: {} invocations at τ_in = {period} µs",
                res.records().len()
            )?;
            if res.deadlocked() {
                writeln!(
                    out,
                    "  network DEADLOCKED after {} invocations",
                    res.records().len()
                )?;
                for e in res.deadlock_cycle() {
                    writeln!(
                        out,
                        "    {} (invocation {}) waits for {:?}",
                        tfg.message(e.message).name(),
                        e.invocation,
                        e.waiting_for
                    )?;
                }
            } else {
                let i = res.interval_stats();
                let l = res.latency_stats();
                writeln!(
                    out,
                    "  output interval : {:.2}/{:.2}/{:.2} µs (min/mean/max)",
                    i.min, i.mean, i.max
                )?;
                writeln!(
                    out,
                    "  latency         : {:.2}/{:.2}/{:.2} µs",
                    l.min, l.mean, l.max
                )?;
                if let Some(b) = res.trace().blocked_summary() {
                    writeln!(
                        out,
                        "  blocked time    : p50 {:.2}, p95 {:.2}, max {:.2} µs over {} flights",
                        b.p50, b.p95, b.max, b.count
                    )?;
                }
                writeln!(
                    out,
                    "  inconsistent    : {}",
                    res.has_output_inconsistency(1e-6)
                )?;
            }
            write_observability(opts, &metrics, &sim_events, out)?;
        }
        "report" => {
            let events = run_report(opts, topo.as_ref(), &tfg, &alloc, &timing, period, rec, out)?;
            write_observability(opts, &metrics, &events, out)?;
        }
        "sweep" => {
            writeln!(
                out,
                "load sweep on {} (B = {} bytes/µs):",
                topo.name(),
                opts.bandwidth
            )?;
            writeln!(out, "{:<8} {:<26} {:<12}", "load", "wormhole", "scheduled")?;
            for i in 0..12 {
                let load = 0.2 + 0.8 * i as f64 / 11.0;
                let p = tau_c / load;
                let res = WormholeSim::new(topo.as_ref(), &tfg, &alloc, &timing)?
                    .with_virtual_channels(opts.virtual_channels)?
                    .run(p, &SimConfig::default())?;
                let wr = if res.deadlocked() {
                    "deadlock".to_string()
                } else if res.has_output_inconsistency(1e-6) {
                    format!("OI (spread {:.1} µs)", res.interval_stats().spread())
                } else {
                    "consistent".to_string()
                };
                let sr = match compile(
                    topo.as_ref(),
                    &tfg,
                    &alloc,
                    &timing,
                    p,
                    &compile_config(opts),
                ) {
                    Ok(s) => format!("ok (U={:.2})", s.peak_utilization()),
                    Err(e) => match e {
                        CompileError::UtilizationExceeded { utilization } => {
                            format!("U={utilization:.2}>1")
                        }
                        CompileError::AllocationInfeasible { .. } => "alloc-infeasible".into(),
                        CompileError::IntervalUnschedulable { .. } => "interval-unsched".into(),
                        other => format!("{other}"),
                    },
                };
                writeln!(out, "{load:<8.3} {wr:<26} {sr:<12}")?;
            }
        }
        "faults" => {
            run_faults(opts, topo.as_ref(), &tfg, &alloc, &timing, period, rec, out)?;
            write_observability(opts, &metrics, &[], out)?;
        }
        "serve" => {
            let config = compile_config(opts);
            let engine = serve_engine(topo, period, timing, config, opts.parallelism);
            let mut daemon = sr::serve::Daemon::new(engine);
            if let Some(path) = &opts.journal {
                // The genesis meta line records everything serve-replay
                // needs to rebuild a bit-identical engine. Resolved values
                // (period) go in as shortest round-trip f64 text.
                let period_s = period.to_string();
                let bandwidth_s = opts.bandwidth.to_string();
                let guard_s = opts.guard.to_string();
                let spare_s = opts.spare.to_string();
                let parallelism_s = opts.parallelism.to_string();
                let partition_s = opts.partition.to_string();
                let cap_scale_s = opts.cap_scale.map(|s| s.to_string());
                let mut pairs = vec![
                    ("topo", opts.topo.as_str()),
                    ("period", period_s.as_str()),
                    ("bandwidth", bandwidth_s.as_str()),
                    ("guard", guard_s.as_str()),
                    ("spare", spare_s.as_str()),
                    ("parallelism", parallelism_s.as_str()),
                    ("partition", partition_s.as_str()),
                    (
                        "alloc_engine",
                        match opts.alloc_engine {
                            AllocEngine::Simplex => "simplex",
                            AllocEngine::Flow => "flow",
                        },
                    ),
                ];
                if let Some(s) = &cap_scale_s {
                    pairs.push(("cap_scale", s.as_str()));
                }
                daemon.attach_journal(std::path::Path::new(path), &pairs)?;
                eprintln!("serve: audit journal at {path}");
            }
            if let Some(addr) = &opts.http {
                // Frames may own stdout (--stdio), so the bound address —
                // needed when binding port 0 — goes to stderr.
                let bound = daemon.attach_http(addr)?;
                eprintln!("serve: http exposition on http://{bound}/metrics");
            }
            if opts.stdio {
                // The framed protocol owns stdin/stdout; nothing else may
                // be written to `out` (it would trail the frame stream).
                daemon.serve_stdio()?;
            } else if let Some(path) = &opts.socket {
                daemon.serve_unix(std::path::Path::new(path))?;
                writeln!(out, "serve: shutdown, removed socket {path}")?;
            } else {
                return Err(SpecError::new("serve requires --stdio or --socket PATH").into());
            }
        }
        "serve-replay" => {
            let path = opts
                .input
                .as_ref()
                .ok_or_else(|| SpecError::new("serve-replay requires a journal FILE argument"))?;
            run_serve_replay(path, out)?;
        }
        _ => unreachable!("validated in parse_args"),
    }
    Ok(())
}

/// The `faults` subcommand: inject a fault set (or sweep random ones) into a
/// freshly compiled schedule and report damage, repair, and how the wormhole
/// baseline fares under the *same* failures.
#[allow(clippy::too_many_arguments)]
fn run_faults(
    opts: &Options,
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    alloc: &Allocation,
    timing: &Timing,
    period: f64,
    rec: &dyn Recorder,
    out: &mut dyn fmt::Write,
) -> Result<(), Box<dyn Error>> {
    let config = compile_config(opts);
    let sched =
        match sr::core::compile_with_recorder(topo, tfg, alloc, timing, period, &config, rec) {
            Ok(s) => s,
            Err(e) => {
                writeln!(out, "baseline schedule infeasible: {e}")?;
                return Ok(());
            }
        };
    writeln!(
        out,
        "baseline: period {} µs, U = {:.3}, spare ε = {}",
        sched.period(),
        sched.peak_utilization(),
        opts.spare
    )?;

    if let Some(k_max) = opts.sweep_k {
        let cfg = SweepConfig {
            k_max,
            ..SweepConfig::default()
        };
        writeln!(
            out,
            "fault sweep on {} ({} random draws per k):",
            topo.name(),
            cfg.trials
        )?;
        writeln!(
            out,
            "{:<4} {:<10} {:<9} {:<9} {:<11} {:<10} {:<9} wormhole",
            "k", "unchanged", "repaired", "degraded", "infeasible", "feasible%", "rerouted"
        )?;
        for p in sweep_link_failures(&sched, topo, tfg, timing, &cfg) {
            // One representative draw per k for the WR-under-faults column,
            // using the same seed derivation as the sweep's first trial.
            let seed = cfg.seed.wrapping_add((p.k as u64) << 32);
            let faults = FaultSet::random_links(topo, p.k, seed);
            let wr = wormhole_under_faults(topo, tfg, alloc, timing, period, &faults, opts)?;
            writeln!(
                out,
                "{:<4} {:<10} {:<9} {:<9} {:<11} {:<10.0} {:<9.1} {}",
                p.k,
                p.unchanged,
                p.repaired,
                p.degraded,
                p.infeasible,
                p.feasible_fraction() * 100.0,
                p.mean_rerouted,
                wr
            )?;
        }
        return Ok(());
    }

    let mut faults = FaultSet::new();
    for &l in &opts.fail_links {
        if l >= topo.num_links() {
            return Err(Box::new(SpecError::new(format!(
                "--fail-links: L{l} out of range ({} has {} links)",
                topo.name(),
                topo.num_links()
            ))));
        }
        faults = faults.fail_link(LinkId(l));
    }
    for &n in &opts.fail_nodes {
        if n >= topo.num_nodes() {
            return Err(Box::new(SpecError::new(format!(
                "--fail-nodes: N{n} out of range ({} has {} nodes)",
                topo.name(),
                topo.num_nodes()
            ))));
        }
        faults = faults.fail_node(NodeId(n));
    }
    writeln!(out, "faults  : {faults}")?;
    let report = analyze_damage(&sched, &faults);
    writeln!(
        out,
        "damage  : {} unaffected, {} affected, {} lost (of {} messages)",
        report.unaffected.len(),
        report.affected.len(),
        report.lost.len(),
        tfg.num_messages()
    )?;

    if !opts.repair {
        match verify_with_faults(&sched, topo, tfg, &faults) {
            Ok(()) => writeln!(out, "schedule remains valid under these faults")?,
            Err(e) => writeln!(
                out,
                "schedule invalid under faults: {e} (rerun with --repair)"
            )?,
        }
        let wr = wormhole_under_faults(topo, tfg, alloc, timing, period, &faults, opts)?;
        writeln!(out, "wormhole under same faults: {wr}")?;
        return Ok(());
    }

    let t0 = std::time::Instant::now();
    let outcome = sr::fault::repair_with_recorder(
        &sched,
        topo,
        tfg,
        timing,
        &faults,
        &RepairConfig::default(),
        rec,
    );
    let repair_ms = t0.elapsed().as_secs_f64() * 1e3;
    writeln!(
        out,
        "repair  : {} in {repair_ms:.2} ms ({} rerouted, {} demoted, {} dropped)",
        outcome.verdict,
        outcome.rerouted.len(),
        outcome.demoted.len(),
        outcome.dropped.len()
    )?;
    if let Some(repaired) = &outcome.schedule {
        verify_with_faults(repaired, topo, tfg, &faults)?;
        writeln!(
            out,
            "  repaired schedule verified; U = {:.3}",
            repaired.peak_utilization()
        )?;
    }

    // How does an incremental repair compare with recompiling from scratch
    // on the surviving network?
    let masked = MaskedTopology::new(topo, faults.clone());
    if masked.is_connected() {
        let t1 = std::time::Instant::now();
        let full = compile(&masked, tfg, alloc, timing, period, &config);
        let full_ms = t1.elapsed().as_secs_f64() * 1e3;
        let ratio = if repair_ms > 0.0 {
            full_ms / repair_ms
        } else {
            f64::INFINITY
        };
        match full {
            Ok(_) => writeln!(
                out,
                "recompile: feasible in {full_ms:.2} ms ({ratio:.1}× repair time)"
            )?,
            Err(e) => writeln!(out, "recompile: infeasible in {full_ms:.2} ms ({e})")?,
        }
    } else {
        writeln!(
            out,
            "recompile: skipped (surviving network is disconnected)"
        )?;
    }

    let wr = wormhole_under_faults(topo, tfg, alloc, timing, period, &faults, opts)?;
    writeln!(out, "wormhole under same faults: {wr}")?;
    Ok(())
}

/// Ring-sink capacity covering a whole run: per message-invocation one
/// inject, one deliver, and at most one acquire + release + block per route
/// link, plus one output event per invocation and fixed slack for safety.
fn event_capacity(routes: &[Vec<LinkId>], invocations: usize) -> usize {
    let per_inv: usize = routes.iter().map(|r| 2 + 3 * r.len()).sum::<usize>() + 1;
    per_inv * invocations + 1024
}

/// The compiler configuration every subcommand shares, assembled from the
/// command-line knobs (including `--cap-scale`, which pins the feedback
/// ladder to a single capacity scale).
fn compile_config(opts: &Options) -> CompileConfig {
    let mut config = CompileConfig {
        guard_time: opts.guard,
        parallelism: opts.parallelism,
        spare_capacity: opts.spare,
        alloc_engine: opts.alloc_engine,
        partition: opts.partition,
        ..CompileConfig::default()
    };
    if let Some(s) = opts.cap_scale {
        config.feedback_scales = vec![s];
    }
    config
}

/// Assembles the serve engine the `serve` and `serve-replay` subcommands
/// share — one construction path, so a replayed engine is configured
/// bit-identically to the daemon that wrote the journal.
fn serve_engine(
    topo: Box<dyn Topology>,
    period: f64,
    timing: Timing,
    config: CompileConfig,
    batch_threads: usize,
) -> sr::serve::Engine {
    let serve_cfg = sr::serve::ServeConfig {
        period,
        timing,
        feedback_scales: config.feedback_scales.clone(),
        batch_threads,
        compile: config,
        ..sr::serve::ServeConfig::default()
    };
    sr::serve::Engine::new(topo, serve_cfg)
}

/// Rebuilds the serve engine from an audit journal's genesis meta line.
/// `topo` and `period` are required; every other knob falls back to its
/// command-line default (matching a daemon started without that flag).
fn engine_from_meta(
    meta: &std::collections::BTreeMap<String, String>,
) -> Result<sr::serve::Engine, Box<dyn Error>> {
    let get = |k: &str| meta.get(k).map(String::as_str);
    let topo = parse_topology(
        get("topo").ok_or_else(|| SpecError::new("audit meta is missing \"topo\""))?,
    )?;
    let period: f64 = get("period")
        .ok_or_else(|| SpecError::new("audit meta is missing \"period\""))?
        .parse()
        .map_err(|_| SpecError::new("audit meta \"period\" is not a number"))?;
    let defaults = Options::default();
    let num = |k: &str, fallback: f64| get(k).and_then(|s| s.parse().ok()).unwrap_or(fallback);
    let int = |k: &str, fallback: usize| get(k).and_then(|s| s.parse().ok()).unwrap_or(fallback);
    let bandwidth = num("bandwidth", defaults.bandwidth);
    let parallelism = int("parallelism", defaults.parallelism);
    let mut config = CompileConfig {
        guard_time: num("guard", defaults.guard),
        parallelism,
        spare_capacity: num("spare", defaults.spare),
        alloc_engine: match get("alloc_engine") {
            Some("flow") => AllocEngine::Flow,
            _ => AllocEngine::Simplex,
        },
        partition: int("partition", defaults.partition),
        ..CompileConfig::default()
    };
    if let Some(s) = get("cap_scale").and_then(|s| s.parse::<f64>().ok()) {
        config.feedback_scales = vec![s];
    }
    Ok(serve_engine(
        topo,
        period,
        Timing::calibrated_dvb(bandwidth),
        config,
        parallelism,
    ))
}

/// The `serve-replay` subcommand: re-drive a fresh engine from an audit
/// journal and verify every recorded outcome bit-for-bit. A rotated
/// journal is stitched back together from `<FILE>.1` + `<FILE>`; a torn
/// final line (crash mid-write) is reported and the intact prefix still
/// verifies. Any divergence is an error (nonzero exit).
fn run_serve_replay(path: &str, out: &mut dyn fmt::Write) -> Result<(), Box<dyn Error>> {
    use sr::serve::{apply_record, ledger_hash, parse_audit_line, AuditLine, AuditOp};
    let live = std::fs::read_to_string(path)?;
    let first_is_meta = live
        .lines()
        .next()
        .is_some_and(|l| matches!(parse_audit_line(l), Ok(AuditLine::Meta(_))));
    let mut text = String::new();
    if !first_is_meta {
        // The live file starts mid-session: rotation moved the prefix
        // (including the genesis meta line) to `<path>.1`.
        if let Ok(prev) = std::fs::read_to_string(format!("{path}.1")) {
            writeln!(out, "serve-replay: stitching rotated prefix from {path}.1")?;
            text.push_str(&prev);
        }
    }
    text.push_str(&live);

    let mut engine: Option<sr::serve::Engine> = None;
    let (mut admits, mut evicts, mut rejects) = (0u64, 0u64, 0u64);
    let mut tear: Option<(usize, String)> = None;
    let total = text.lines().count();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_audit_line(line) {
            Ok(AuditLine::Meta(pairs)) => {
                if engine.is_none() {
                    engine = Some(engine_from_meta(&pairs)?);
                }
            }
            Ok(AuditLine::Record(r)) => {
                let eng = engine.as_mut().ok_or_else(|| {
                    SpecError::new(
                        "audit journal has records before its meta line (rotated past the \
                         genesis?) — cannot rebuild the engine",
                    )
                })?;
                apply_record(eng, &r, &sr::obs::NOOP).map_err(|e| {
                    SpecError::new(format!("replay diverged at line {}: {e}", i + 1))
                })?;
                match r.op {
                    AuditOp::Admit => admits += 1,
                    AuditOp::Evict => evicts += 1,
                    AuditOp::Reject => rejects += 1,
                }
            }
            Err(why) => {
                tear = Some((i + 1, why));
                break;
            }
        }
    }
    if let Some((lineno, why)) = &tear {
        writeln!(
            out,
            "serve-replay: torn line {lineno} of {total} ({why}); verified the intact prefix"
        )?;
    }
    let eng =
        engine.ok_or_else(|| SpecError::new(format!("{path} has no audit meta line to replay")))?;
    writeln!(
        out,
        "serve-replay: {} ops verified bit-identical ({admits} admits, {evicts} evicts, \
         {rejects} rejects); tenants: {}; ledger hash {:016x}",
        admits + evicts + rejects,
        eng.tenants().count(),
        ledger_hash(&eng)
    )?;
    Ok(())
}

/// The `report` subcommand: compile the schedule, run the wormhole baseline
/// with event capture, replay the schedule's event stream, analyze both OI
/// distributions, and render the self-contained HTML report to `opts.out`.
/// Returns the wormhole event stream so `--trace-out` can interleave it.
#[allow(clippy::too_many_arguments)]
fn run_report(
    opts: &Options,
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    alloc: &Allocation,
    timing: &Timing,
    period: f64,
    rec: &dyn Recorder,
    out: &mut dyn fmt::Write,
) -> Result<Vec<SimEvent>, Box<dyn Error>> {
    let config = compile_config(opts);
    let (compiled, diag) =
        sr::core::compile_diagnosed(topo, tfg, alloc, timing, period, &config, rec);
    let sched = match compiled {
        Ok(s) => s,
        Err(e) => {
            writeln!(
                out,
                "schedule infeasible: {e} — no report written (run `srsched explain` for the \
                 candidate walk and saturated links)"
            )?;
            return Ok(Vec::new());
        }
    };
    verify(&sched, topo, tfg)?;

    let cfg = SimConfig::default();
    // The wormhole side comes either from a live run or, with
    // --from-journal, replayed from a flight recording on disk.
    let (wr_events, wr_deadlocked) = match &opts.from_journal {
        Some(path) => {
            let data = read_journal(std::path::Path::new(path))?;
            writeln!(
                out,
                "replaying {} journaled events from {path} ({} malformed lines skipped)",
                data.events.len(),
                data.skipped
            )?;
            (data.events, false)
        }
        None => {
            let sim = WormholeSim::new(topo, tfg, alloc, timing)?
                .with_virtual_channels(opts.virtual_channels)?
                .with_adaptive_routing(opts.adaptive)?;
            let sink = RingEventSink::with_capacity(event_capacity(sim.routes(), cfg.invocations));
            let res = {
                let span = sr::obs::span_with(rec, "simulate", || format!("period={period}"));
                let r = sim.run_with_events(period, &cfg, &sink)?;
                drop(span);
                r
            };
            (sink.events(), res.deadlocked())
        }
    };
    let wr_oi = analyze_oi(&wr_events, period, cfg.warmup);
    let sr_events = {
        let span = sr::obs::span_with(rec, "replay", || format!("period={period}"));
        let e = sr::core::replay_events(&sched, tfg, timing, cfg.invocations)?;
        drop(span);
        e
    };
    let sr_oi = analyze_oi(&sr_events, period, cfg.warmup);

    let html = report::render_report(&report::ReportInput {
        topo,
        tfg,
        sched: &sched,
        period,
        wr: &wr_oi,
        sr: &sr_oi,
        wr_deadlocked,
        diag: &diag,
        spec: format!(
            "{} · {} · alloc {} · B = {} bytes/µs · τ_in = {period} µs{}",
            opts.topo,
            opts.tfg,
            opts.alloc,
            opts.bandwidth,
            if opts.from_journal.is_some() {
                " · wormhole side replayed from journal"
            } else {
                ""
            }
        ),
    });
    std::fs::write(&opts.out, &html)?;
    writeln!(out, "wrote report to {} ({} bytes)", opts.out, html.len())?;
    writeln!(
        out,
        "  wormhole : {} outputs, max |δ − τ_in| = {:.3} µs, {} cross-invocation stalls{}",
        wr_oi.outputs.len(),
        wr_oi.max_deviation_us,
        wr_oi.cross_invocation_stalls(),
        if wr_deadlocked { " (deadlocked)" } else { "" }
    )?;
    writeln!(
        out,
        "  scheduled: {} outputs, max |δ − τ_in| = {:.3} µs, {} stalls",
        sr_oi.outputs.len(),
        sr_oi.max_deviation_us,
        sr_oi.stalls.len()
    )?;
    Ok(wr_events)
}

/// Runs the wormhole baseline over the masked topology under `faults` and
/// summarizes the outcome in one word (or an OI spread).
fn wormhole_under_faults(
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    alloc: &Allocation,
    timing: &Timing,
    period: f64,
    faults: &FaultSet,
    opts: &Options,
) -> Result<String, Box<dyn Error>> {
    let masked = MaskedTopology::new(topo, faults.clone());
    if !masked.is_connected() {
        return Ok("disconnected".into());
    }
    let res = WormholeSim::new(&masked, tfg, alloc, timing)?
        .with_virtual_channels(opts.virtual_channels)?
        .with_adaptive_routing(opts.adaptive)?
        .run(period, &SimConfig::default())?;
    Ok(if res.deadlocked() {
        "deadlock".into()
    } else if res.has_output_inconsistency(1e-6) {
        format!("OI (spread {:.1} µs)", res.interval_stats().spread())
    } else {
        "consistent".into()
    })
}

/// Flushes the recorder per `--trace-out`/`--metrics`/`--journal`/`--prom`:
/// the Chrome trace to its file (noting the path in `out`), the metrics
/// table to stderr (so it never mixes with parseable stdout output), the
/// JSONL flight-recorder journal (meta, counters, histograms, spans, and
/// any captured simulation events) appended with bounded rotation, and the
/// Prometheus text exposition to its file.
fn write_observability(
    opts: &Options,
    metrics: &MetricsRecorder,
    events: &[SimEvent],
    out: &mut dyn fmt::Write,
) -> Result<(), Box<dyn Error>> {
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, metrics.chrome_trace_json_with_events(events))?;
        writeln!(
            out,
            "wrote Chrome trace to {path} (load in chrome://tracing)"
        )?;
    }
    if let Some(path) = &opts.journal {
        let mut w = JournalWriter::create(std::path::Path::new(path), sr::obs::DEFAULT_MAX_BYTES)?;
        w.meta(&[
            ("command", opts.command.as_str()),
            ("topo", opts.topo.as_str()),
            ("tfg", opts.tfg.as_str()),
            ("alloc", opts.alloc.as_str()),
            ("bandwidth", &format!("{}", opts.bandwidth)),
        ])?;
        w.recorder(metrics)?;
        w.events(events)?;
        w.flush()?;
        // Journal self-accounting rides in the `journal.*` namespace so the
        // Prometheus export and `--metrics` table (both rendered below)
        // report what was persisted. The journal itself was already
        // written, so these counters are never inside the file they count.
        metrics.add("journal.lines", w.lines());
        metrics.add("journal.events", events.len() as u64);
        metrics.add("journal.rotations", w.rotations());
        writeln!(
            out,
            "appended journal to {path} ({} lines{})",
            w.lines(),
            if w.rotations() > 0 { ", rotated" } else { "" }
        )?;
    }
    if let Some(path) = &opts.prom {
        std::fs::write(path, metrics.export_prometheus())?;
        writeln!(out, "wrote Prometheus metrics to {path}")?;
    }
    if opts.metrics {
        eprint!("{}", metrics.metrics_table());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_topologies() {
        assert_eq!(parse_topology("cube:6").unwrap().num_nodes(), 64);
        assert_eq!(parse_topology("ghc:4x4x4").unwrap().num_nodes(), 64);
        assert_eq!(parse_topology("torus:8x8").unwrap().num_links(), 128);
        assert_eq!(parse_topology("mesh:8x8").unwrap().num_links(), 112);
        assert!(parse_topology("ring:9").is_err());
        assert!(parse_topology("cube").is_err());
        assert!(parse_topology("torus:8xBAD").is_err());
        assert!(parse_topology("ghc:1x4").is_err()); // radix too small
    }

    #[test]
    fn parse_tfgs() {
        assert_eq!(parse_tfg("dvb:8").unwrap().num_tasks(), 12);
        assert_eq!(parse_tfg("dvb-raw:2").unwrap().num_messages(), 8);
        assert_eq!(parse_tfg("chain:5").unwrap().num_messages(), 4);
        assert_eq!(parse_tfg("diamond:3").unwrap().num_tasks(), 5);
        assert!(parse_tfg("random:42").unwrap().num_tasks() > 0);
        assert!(parse_tfg("dvb:0").is_err());
        assert!(parse_tfg("mystery:4").is_err());
        assert!(parse_tfg("dvb").is_err());
    }

    #[test]
    fn parse_allocations() {
        let topo = parse_topology("cube:4").unwrap();
        let tfg = parse_tfg("dvb:4").unwrap();
        for spec in [
            "greedy",
            "scatter:5",
            "random:3",
            "roundrobin",
            "search:1",
            "codesign:2",
        ] {
            let a = parse_allocation(spec, &tfg, topo.as_ref()).unwrap();
            assert_eq!(a.placement().len(), tfg.num_tasks());
        }
        assert!(parse_allocation("magic", &tfg, topo.as_ref()).is_err());
        assert!(parse_allocation("random:x", &tfg, topo.as_ref()).is_err());
    }

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_command_lines() {
        let o = parse_args(&args("compile --topo torus:4x4 --period 80 --guard 1.5")).unwrap();
        assert_eq!(o.command, "compile");
        assert_eq!(o.topo, "torus:4x4");
        assert_eq!(o.period, Some(80.0));
        assert_eq!(o.guard, 1.5);

        let o = parse_args(&args("simulate --vc 2 --dump")).unwrap();
        assert_eq!(o.virtual_channels, 2);
        assert!(o.dump);

        let o = parse_args(&args("compile --trace-out /tmp/t.json --metrics")).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("/tmp/t.json"));
        assert!(o.metrics);
        assert!(parse_args(&args("compile --trace-out")).is_err());

        let o = parse_args(&args("compile --alloc-engine flow")).unwrap();
        assert_eq!(o.alloc_engine, AllocEngine::Flow);
        let o = parse_args(&args("compile --alloc-engine simplex")).unwrap();
        assert_eq!(o.alloc_engine, AllocEngine::Simplex);
        assert!(parse_args(&args("compile --alloc-engine lp")).is_err());
        assert!(parse_args(&args("compile --alloc-engine")).is_err());

        let o = parse_args(&args("compile --partition 4")).unwrap();
        assert_eq!(o.partition, 4);
        assert_eq!(parse_args(&args("compile")).unwrap().partition, 0);
        assert!(parse_args(&args("compile --partition four")).is_err());
        assert!(parse_args(&args("compile --partition")).is_err());

        assert!(parse_args(&args("explode")).is_err());
        assert!(parse_args(&args("compile --period")).is_err());
        assert!(parse_args(&args("compile --frobnicate 3")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn parse_fault_flags() {
        let o = parse_args(&args("faults --fail-links 3,17 --fail-nodes 5 --repair")).unwrap();
        assert_eq!(o.command, "faults");
        assert_eq!(o.fail_links, vec![3, 17]);
        assert_eq!(o.fail_nodes, vec![5]);
        assert!(o.repair);
        assert_eq!(o.sweep_k, None);

        let o = parse_args(&args("faults --sweep 3 --spare 0.1")).unwrap();
        assert_eq!(o.sweep_k, Some(3));
        assert_eq!(o.spare, 0.1);

        assert!(parse_args(&args("faults --fail-links 3,BAD")).is_err());
        assert!(parse_args(&args("faults --sweep x")).is_err());
        assert!(parse_args(&args("compile --spare 1.5")).is_err());
    }

    #[test]
    fn run_faults_point_repair() {
        let opts = parse_args(&args(
            "faults --topo torus:4x4 --tfg dvb:4 --bandwidth 128 --fail-links 0 --repair",
        ))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(out.contains("damage"), "{out}");
        assert!(out.contains("repair  :"), "{out}");
        assert!(out.contains("wormhole under same faults"), "{out}");
    }

    #[test]
    fn run_faults_out_of_range_link_errors() {
        let opts = parse_args(&args(
            "faults --topo cube:3 --tfg chain:3 --fail-links 9999 --period 120",
        ))
        .unwrap();
        let mut out = String::new();
        assert!(run(&opts, &mut out).is_err());
    }

    #[test]
    fn run_faults_sweep_smoke() {
        let opts = parse_args(&args(
            "faults --topo cube:3 --tfg chain:3 --period 120 --sweep 1",
        ))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(out.contains("fault sweep"), "{out}");
        assert!(out.lines().count() >= 4, "{out}");
    }

    #[test]
    fn run_info() {
        let opts = parse_args(&args("info --topo cube:3 --tfg chain:3")).unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(out.contains("GHC(2,2,2)"));
        assert!(out.contains("3 tasks"));
    }

    #[test]
    fn run_compile_reports_feasibility() {
        let opts = parse_args(&args("compile --topo cube:4 --tfg chain:4 --period 100")).unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(out.contains("compiled and verified"), "{out}");
    }

    #[test]
    fn run_compile_flow_engine() {
        let opts = parse_args(&args(
            "compile --topo cube:4 --tfg chain:4 --period 100 --alloc-engine flow",
        ))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(out.contains("compiled and verified"), "{out}");
    }

    #[test]
    fn run_compile_reports_infeasibility() {
        // Big diamond on a tiny machine at max rate: infeasible (tasks must
        // share nodes, so use the colliding allocation explicitly).
        let opts = parse_args(&args(
            "compile --topo cube:1 --tfg diamond:6 --period 50 --bandwidth 64 --alloc random:1",
        ))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(out.contains("infeasible"), "{out}");
    }

    #[test]
    fn run_simulate_smoke() {
        let opts = parse_args(&args(
            "simulate --topo cube:4 --tfg dvb:4 --period 70 --bandwidth 128",
        ))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(
            out.contains("output interval") || out.contains("DEADLOCK"),
            "{out}"
        );
    }

    #[test]
    fn run_minperiod_smoke() {
        let opts = parse_args(&args(
            "minperiod --topo cube:4 --tfg chain:4 --bandwidth 128",
        ))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(out.contains("minimum sustainable period"), "{out}");
    }

    #[test]
    fn tfg_file_spec_parses() {
        let dir = std::env::temp_dir().join("srsched_test_tfg");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("pipe.tfg");
        std::fs::write(&path, "task a 100\ntask b 100\nmsg m a -> b 64\n").unwrap();
        let g = parse_tfg(&format!("file:{}", path.display())).unwrap();
        assert_eq!(g.num_tasks(), 2);
        assert!(parse_tfg("file:/definitely/not/there.tfg").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_sweep_smoke() {
        let opts = parse_args(&args("sweep --topo cube:4 --tfg dvb:4 --bandwidth 128")).unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert_eq!(out.lines().count(), 14, "{out}");
    }

    #[test]
    fn run_compile_json_writes_file() {
        let dir = std::env::temp_dir().join("srsched_test_json");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("sched.json");
        let opts = parse_args(&args(&format!(
            "compile --topo cube:3 --tfg chain:3 --period 120 --json {}",
            path.display()
        )))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"period_us\":120.0"), "{json}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_compile_trace_out_writes_chrome_json() {
        let dir = std::env::temp_dir().join("srsched_test_trace");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("trace.json");
        let opts = parse_args(&args(&format!(
            "compile --topo cube:3 --tfg chain:3 --period 120 --trace-out {}",
            path.display()
        )))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(out.contains("wrote Chrome trace"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"name\":\"compile\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_simulate_trace_out_has_flight_histograms() {
        let dir = std::env::temp_dir().join("srsched_test_trace");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("sim_trace.json");
        let opts = parse_args(&args(&format!(
            "simulate --topo cube:4 --tfg dvb:4 --period 70 --bandwidth 128 --trace-out {}",
            path.display()
        )))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"name\":\"simulate\""), "{json}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_report_command() {
        let o = parse_args(&args("report --topo torus:4x4 --out /tmp/r.html")).unwrap();
        assert_eq!(o.command, "report");
        assert_eq!(o.out, "/tmp/r.html");
        assert_eq!(parse_args(&args("report")).unwrap().out, "report.html");
        assert!(parse_args(&args("report --out")).is_err());
    }

    #[test]
    fn run_report_writes_selfcontained_html() {
        let dir = std::env::temp_dir().join("srsched_test_report");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("report.html");
        let opts = parse_args(&args(&format!(
            "report --topo cube:3 --tfg chain:3 --period 120 --out {}",
            path.display()
        )))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(out.contains("wrote report"), "{out}");
        let html = std::fs::read_to_string(&path).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"), "not a document");
        for id in ["overview", "gantt", "heatmap", "oi"] {
            assert!(html.contains(&format!("<section id=\"{id}\">")), "{id}");
        }
        // Self-contained: no external resources of any kind.
        for banned in ["http://", "https://", "<script", "<link", "src="] {
            assert!(!html.contains(banned), "external reference: {banned}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_report_infeasible_writes_nothing() {
        let dir = std::env::temp_dir().join("srsched_test_report");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("never.html");
        let _ = std::fs::remove_file(&path);
        let opts = parse_args(&args(&format!(
            "report --topo cube:1 --tfg diamond:6 --period 50 --alloc random:1 --out {}",
            path.display()
        )))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(out.contains("infeasible"), "{out}");
        assert!(!path.exists());
    }

    #[test]
    fn run_simulate_trace_out_interleaves_sim_events() {
        let dir = std::env::temp_dir().join("srsched_test_trace");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("sim_events.json");
        let opts = parse_args(&args(&format!(
            "simulate --topo cube:3 --tfg chain:3 --period 120 --trace-out {}",
            path.display()
        )))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        // Simulation events live on pid 2 next to the pid-1 compile spans.
        assert!(json.contains("\"simulation\""), "{json}");
        assert!(json.contains("\"cat\":\"sim\""), "{json}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_observability_flags() {
        let o = parse_args(&args(
            "explain --journal /tmp/j.jsonl --prom /tmp/m.prom --cap-scale 0.5",
        ))
        .unwrap();
        assert_eq!(o.command, "explain");
        assert_eq!(o.journal.as_deref(), Some("/tmp/j.jsonl"));
        assert_eq!(o.prom.as_deref(), Some("/tmp/m.prom"));
        assert_eq!(o.cap_scale, Some(0.5));
        let o = parse_args(&args("report --from-journal flight.jsonl")).unwrap();
        assert_eq!(o.from_journal.as_deref(), Some("flight.jsonl"));
        assert!(parse_args(&args("compile --cap-scale 0")).is_err());
        assert!(parse_args(&args("compile --cap-scale 1.5")).is_err());
        assert!(parse_args(&args("compile --journal")).is_err());
    }

    #[test]
    fn parse_serve_ops_flags() {
        let o = parse_args(&args(
            "serve --stdio --http 127.0.0.1:9464 --journal audit.jsonl",
        ))
        .unwrap();
        assert_eq!(o.http.as_deref(), Some("127.0.0.1:9464"));
        assert_eq!(o.journal.as_deref(), Some("audit.jsonl"));
        let o = parse_args(&args("serve-replay audit.jsonl")).unwrap();
        assert_eq!(o.command, "serve-replay");
        assert_eq!(o.input.as_deref(), Some("audit.jsonl"));
        // A second positional or a stray flag still errors.
        assert!(parse_args(&args("serve-replay a.jsonl b.jsonl")).is_err());
        assert!(parse_args(&args("compile extra.file")).is_err());
    }

    #[test]
    fn run_explain_names_saturated_links_when_infeasible() {
        let opts = parse_args(&args(
            "explain --topo torus:4x4 --tfg dvb:4 --bandwidth 64 --alloc scatter:7 \
             --cap-scale 0.5",
        ))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(out.contains("verdict: infeasible"), "{out}");
        assert!(out.contains("saturated link"), "{out}");
        assert!(out.contains("binding intervals"), "{out}");
    }

    #[test]
    fn run_compile_journal_and_prom_write_files() {
        let dir = std::env::temp_dir().join("srsched_test_obs_out");
        let _ = std::fs::create_dir_all(&dir);
        let jpath = dir.join("compile.jsonl");
        let ppath = dir.join("compile.prom");
        let _ = std::fs::remove_file(&jpath);
        let opts = parse_args(&args(&format!(
            "compile --topo cube:3 --tfg chain:3 --period 120 --journal {} --prom {}",
            jpath.display(),
            ppath.display()
        )))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(out.contains("appended journal"), "{out}");
        assert!(out.contains("wrote Prometheus metrics"), "{out}");
        let data = sr::obs::read_journal(&jpath).unwrap();
        assert_eq!(data.skipped, 0);
        assert_eq!(data.meta["command"], "compile");
        assert!(data.counters.keys().any(|k| k.starts_with("compile.")));
        let prom = std::fs::read_to_string(&ppath).unwrap();
        assert!(prom.contains("# TYPE sr_"), "{prom}");
        assert!(prom.contains("_total"), "{prom}");
        // Journal self-accounting is recorded after the journal is written,
        // so it reaches the Prometheus export but never the journal itself.
        assert!(prom.contains("sr_journal_lines_total"), "{prom}");
        assert!(!data.counters.contains_key("journal.lines"));
        let _ = std::fs::remove_file(&jpath);
        let _ = std::fs::remove_file(&ppath);
    }

    #[test]
    fn run_report_from_simulate_journal_round_trips() {
        let dir = std::env::temp_dir().join("srsched_test_obs_out");
        let _ = std::fs::create_dir_all(&dir);
        let jpath = dir.join("flight.jsonl");
        let hpath = dir.join("replayed.html");
        let _ = std::fs::remove_file(&jpath);
        let workload = "--topo cube:3 --tfg chain:3 --period 120";
        let opts = parse_args(&args(&format!(
            "simulate {workload} --journal {}",
            jpath.display()
        )))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        let data = sr::obs::read_journal(&jpath).unwrap();
        assert!(!data.events.is_empty(), "simulate must journal its events");

        let opts = parse_args(&args(&format!(
            "report {workload} --from-journal {} --out {}",
            jpath.display(),
            hpath.display()
        )))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(out.contains("replaying"), "{out}");
        assert!(out.contains("wrote report"), "{out}");
        let html = std::fs::read_to_string(&hpath).unwrap();
        assert!(html.contains("replayed from journal"), "{html}");
        assert!(html.contains("<section id=\"diagnosis\">"), "{html}");
        let _ = std::fs::remove_file(&jpath);
        let _ = std::fs::remove_file(&hpath);
    }

    #[test]
    fn run_compile_timeline_renders() {
        let opts = parse_args(&args(
            "compile --topo cube:3 --tfg chain:3 --period 120 --timeline",
        ))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        assert!(out.contains("link timelines"), "{out}");
        assert!(out.contains("L"), "{out}");
    }

    #[test]
    fn run_compile_dump_lists_commands() {
        let opts = parse_args(&args(
            "compile --topo cube:3 --tfg chain:3 --period 120 --dump",
        ))
        .unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        if out.contains("compiled") {
            assert!(out.contains("->"), "{out}");
        }
    }
}
