//! Self-contained HTML schedule reports for the `report` subcommand.
//!
//! One call to [`render_report`] turns a compiled schedule plus the OI
//! analyses of a wormhole run and a scheduled-routing replay of the *same*
//! workload into a single HTML document with five panels:
//!
//! 1. **Overview** — workload parameters and schedule statistics;
//! 2. **Gantt** — per-link occupancy over the `[0, τ_in)` frame, one SVG
//!    row per traffic-carrying link, one rect per scheduled segment;
//! 3. **Heatmap** — the allocation LP's message × interval transmission-time
//!    split, shaded by the fraction of each interval the message occupies;
//! 4. **OI** — the inter-output-interval histograms and a wormhole-vs-
//!    scheduled side-by-side table (the paper's §3 claim as a picture: the
//!    WR histogram spreads, the SR histogram is a single bar at `τ_in`);
//! 5. **Diagnosis** — the compiler's decision record: every `(seed, scale)`
//!    candidate the feedback search walked and the winning schedule's
//!    tightest capacity rows (the links that would give out first).
//!
//! Everything is inline — no external assets, scripts, or stylesheets — so
//! the file can be archived as a CI artifact and opened anywhere. The
//! document's tag skeleton is pinned by a golden test via [`structure`].

use std::fmt::Write as _;

use sr::obs::OiReport;
use sr::prelude::*;

/// Everything [`render_report`] needs about one compiled-and-measured
/// workload.
pub struct ReportInput<'a> {
    /// The platform the schedule was compiled for.
    pub topo: &'a dyn Topology,
    /// The task-flow graph.
    pub tfg: &'a TaskFlowGraph,
    /// The compiled scheduled-routing schedule.
    pub sched: &'a Schedule,
    /// The input period `τ_in`, µs.
    pub period: f64,
    /// OI analysis of the wormhole run.
    pub wr: &'a OiReport,
    /// OI analysis of the scheduled-routing replay.
    pub sr: &'a OiReport,
    /// Whether the wormhole run deadlocked (truncating its output series).
    pub wr_deadlocked: bool,
    /// The compile's decision record (candidate walk + bottlenecks).
    pub diag: &'a sr::core::Diagnosis,
    /// Human-readable workload spec line (topology/tfg/alloc/bandwidth).
    pub spec: String,
}

const WIDTH: usize = 940;
const ROW_H: usize = 16;
const LABEL_W: usize = 130;
const PALETTE: [&str; 10] = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
    "#9c755f", "#bab0ac",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn color(message: usize) -> &'static str {
    PALETTE[message % PALETTE.len()]
}

/// Renders the complete self-contained HTML report.
pub fn render_report(inp: &ReportInput<'_>) -> String {
    let mut h = String::new();
    h.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(h, "<title>srsched report — {}</title>", esc(&inp.spec));
    h.push_str(
        "<style>\nbody{font:14px/1.45 system-ui,sans-serif;margin:24px auto;max-width:1000px;\
         color:#222}\nh1{font-size:20px}\nh2{font-size:16px;border-bottom:1px solid #ddd;\
         padding-bottom:4px}\ntable{border-collapse:collapse}\ntd,th{border:1px solid #ddd;\
         padding:3px 10px;text-align:right}\nth{background:#f5f5f5}\ntd:first-child,\
         th:first-child{text-align:left}\nsvg{display:block;margin:8px 0}\n.ok{color:#2a7a2a}\
         \n.bad{color:#b22}\n</style>\n</head>\n<body>\n",
    );
    let _ = writeln!(h, "<h1>srsched schedule report</h1>");
    let _ = writeln!(h, "<p>{}</p>", esc(&inp.spec));

    overview_section(&mut h, inp);
    gantt_section(&mut h, inp);
    heatmap_section(&mut h, inp);
    oi_section(&mut h, inp);
    diagnosis_section(&mut h, inp);

    h.push_str("</body>\n</html>\n");
    h
}

/// The compiler's decision record: the `(seed, scale)` candidate walk and
/// the winner's tightest capacity rows, as rendered by
/// [`sr::core::Diagnosis::render_text`] (preformatted — the same text
/// `srsched explain` prints).
fn diagnosis_section(h: &mut String, inp: &ReportInput<'_>) {
    h.push_str(
        "<section id=\"diagnosis\">\n<h2>Compile diagnosis: candidate walk and bottlenecks</h2>\n",
    );
    let _ = writeln!(
        h,
        "<pre>{}</pre>",
        esc(&inp.diag.render_text(inp.topo, inp.tfg))
    );
    h.push_str("</section>\n");
}

fn overview_section(h: &mut String, inp: &ReportInput<'_>) {
    let s = inp.sched;
    h.push_str("<section id=\"overview\">\n<h2>Overview</h2>\n");
    h.push_str("<table>\n");
    let mut row = |k: &str, v: String| {
        let _ = writeln!(h, "<tr><td>{}</td><td>{}</td></tr>", esc(k), v);
    };
    row("topology", esc(&inp.topo.name()));
    row(
        "tasks / messages",
        format!("{} / {}", inp.tfg.num_tasks(), inp.tfg.num_messages()),
    );
    row("period τ_in", format!("{:.3} µs", inp.period));
    row("latency", format!("{:.3} µs", s.latency()));
    row(
        "peak utilization",
        format!(
            "{:.3} (baseline {:.3})",
            s.peak_utilization(),
            s.baseline_peak_utilization()
        ),
    );
    row("intervals", format!("{}", s.intervals().len()));
    row("segments", format!("{}", s.segments().len()));
    row("guard time", format!("{:.3} µs", s.guard_time()));
    h.push_str("</table>\n</section>\n");
}

fn gantt_section(h: &mut String, inp: &ReportInput<'_>) {
    let s = inp.sched;
    // One row per traffic-carrying link.
    let busy_links: Vec<LinkId> = (0..inp.topo.num_links())
        .map(LinkId)
        .filter(|&l| !s.link_busy_spans(l).is_empty())
        .collect();
    h.push_str("<section id=\"gantt\">\n<h2>Link occupancy over the [0, τ_in) frame</h2>\n");
    let _ = writeln!(
        h,
        "<p>{} of {} links carry traffic; one rect per scheduled segment, colored by message.</p>",
        busy_links.len(),
        inp.topo.num_links()
    );
    let height = ROW_H * (busy_links.len() + 1) + 6;
    let _ = writeln!(h, "<svg class=\"gantt\" viewBox=\"0 0 {WIDTH} {height}\">");
    let plot_w = WIDTH - LABEL_W;
    let scale = plot_w as f64 / inp.period;
    for (r, &link) in busy_links.iter().enumerate() {
        let y = r * ROW_H + 4;
        let (a, b) = inp.topo.link_endpoints(link);
        let _ = writeln!(
            h,
            "<text x=\"0\" y=\"{}\" font-size=\"11\">{link} ({a}-{b})</text>",
            y + ROW_H - 6
        );
        let _ = writeln!(
            h,
            "<rect x=\"{LABEL_W}\" y=\"{y}\" width=\"{plot_w}\" height=\"{}\" fill=\"#f4f4f4\"/>",
            ROW_H - 3
        );
        for seg in s.segments() {
            if !s.assignment().links(seg.message).contains(&link) {
                continue;
            }
            let x = LABEL_W as f64 + seg.start * scale;
            let w = ((seg.end - seg.start) * scale).max(1.0);
            let _ = writeln!(
                h,
                "<rect x=\"{x:.1}\" y=\"{y}\" width=\"{w:.1}\" height=\"{}\" fill=\"{}\">\
                 <title>{}: [{:.2}, {:.2}] µs</title></rect>",
                ROW_H - 3,
                color(seg.message.index()),
                esc(inp.tfg.message(seg.message).name()),
                seg.start,
                seg.end,
            );
        }
    }
    // Frame axis: 0 and τ_in.
    let axis_y = busy_links.len() * ROW_H + 14;
    let _ = writeln!(
        h,
        "<text x=\"{LABEL_W}\" y=\"{axis_y}\" font-size=\"11\">0 µs</text>"
    );
    let _ = writeln!(
        h,
        "<text x=\"{WIDTH}\" y=\"{axis_y}\" font-size=\"11\" text-anchor=\"end\">{:.2} µs = τ_in</text>",
        inp.period
    );
    h.push_str("</svg>\n</section>\n");
}

fn heatmap_section(h: &mut String, inp: &ReportInput<'_>) {
    let s = inp.sched;
    let intervals = s.intervals();
    let alloc = s.allocation();
    let nm = alloc.num_messages();
    h.push_str("<section id=\"heatmap\">\n<h2>Interval utilization (allocation LP)</h2>\n");
    let _ = writeln!(
        h,
        "<p>Each cell shades the fraction of interval I<sub>k</sub> message M<sub>i</sub> \
         transmits for; columns are the {} frame intervals.</p>",
        intervals.len()
    );
    let height = ROW_H * (nm + 1) + 6;
    let _ = writeln!(
        h,
        "<svg class=\"heatmap\" viewBox=\"0 0 {WIDTH} {height}\">"
    );
    let plot_w = WIDTH - LABEL_W;
    let scale = plot_w as f64 / inp.period;
    for m in 0..nm {
        let y = m * ROW_H + 4;
        let id = sr::tfg::MessageId(m);
        let _ = writeln!(
            h,
            "<text x=\"0\" y=\"{}\" font-size=\"11\">{}</text>",
            y + ROW_H - 6,
            esc(inp.tfg.message(id).name())
        );
        for k in 0..intervals.len() {
            let (a, b) = intervals.bounds(k);
            let frac = if intervals.length(k) > 0.0 {
                (alloc.allocated(id, k) / intervals.length(k)).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let x = LABEL_W as f64 + a * scale;
            let w = ((b - a) * scale - 1.0).max(0.5);
            let _ = writeln!(
                h,
                "<rect x=\"{x:.1}\" y=\"{y}\" width=\"{w:.1}\" height=\"{}\" fill=\"{}\" \
                 fill-opacity=\"{frac:.3}\" stroke=\"#eee\" stroke-width=\"0.5\">\
                 <title>I{k}: {:.1}%</title></rect>",
                ROW_H - 3,
                color(m),
                frac * 100.0
            );
        }
    }
    let axis_y = nm * ROW_H + 14;
    let _ = writeln!(
        h,
        "<text x=\"{LABEL_W}\" y=\"{axis_y}\" font-size=\"11\">0 µs</text>"
    );
    let _ = writeln!(
        h,
        "<text x=\"{WIDTH}\" y=\"{axis_y}\" font-size=\"11\" text-anchor=\"end\">{:.2} µs = τ_in</text>",
        inp.period
    );
    h.push_str("</svg>\n</section>\n");
}

fn oi_section(h: &mut String, inp: &ReportInput<'_>) {
    h.push_str(
        "<section id=\"oi\">\n<h2>Output-interval distribution: wormhole vs scheduled</h2>\n",
    );
    // Side-by-side summary table.
    h.push_str("<table>\n<tr><th>metric</th><th>wormhole</th><th>scheduled</th></tr>\n");
    let fmt_opt = |r: &OiReport, f: &dyn Fn(&sr::obs::Summary) -> f64| -> String {
        r.interval_summary
            .as_ref()
            .map_or("–".into(), |s| format!("{:.3}", f(s)))
    };
    let mut row = |k: &str, wr: String, sr: String| {
        let _ = writeln!(h, "<tr><td>{}</td><td>{wr}</td><td>{sr}</td></tr>", esc(k));
    };
    row(
        "outputs measured",
        format!(
            "{}{}",
            inp.wr.outputs.len(),
            if inp.wr_deadlocked {
                " (deadlocked)"
            } else {
                ""
            }
        ),
        format!("{}", inp.sr.outputs.len()),
    );
    row(
        "min δ (µs)",
        format!("{:.3}", inp.wr.min_interval_us),
        format!("{:.3}", inp.sr.min_interval_us),
    );
    row(
        "p50 δ (µs)",
        fmt_opt(inp.wr, &|s| s.p50),
        fmt_opt(inp.sr, &|s| s.p50),
    );
    row(
        "p95 δ (µs)",
        fmt_opt(inp.wr, &|s| s.p95),
        fmt_opt(inp.sr, &|s| s.p95),
    );
    row(
        "max δ (µs)",
        fmt_opt(inp.wr, &|s| s.max),
        fmt_opt(inp.sr, &|s| s.max),
    );
    row(
        "max |δ − τ_in| (µs)",
        format!("{:.3}", inp.wr.max_deviation_us),
        format!("{:.3}", inp.sr.max_deviation_us),
    );
    row(
        "header stalls",
        format!("{}", inp.wr.stalls.len()),
        format!("{}", inp.sr.stalls.len()),
    );
    row(
        "cross-invocation stalls",
        format!("{}", inp.wr.cross_invocation_stalls()),
        format!("{}", inp.sr.cross_invocation_stalls()),
    );
    let verdict = |r: &OiReport| -> String {
        if r.is_consistent(1e-6) {
            "<span class=\"ok\">consistent</span>".into()
        } else {
            "<span class=\"bad\">output inconsistency</span>".into()
        }
    };
    row("verdict", verdict(inp.wr), verdict(inp.sr));
    h.push_str("</table>\n");

    histogram_svg(h, "wormhole", inp.wr, inp.period);
    histogram_svg(h, "scheduled", inp.sr, inp.period);

    // Worst blocking chains, if any (wormhole only by construction).
    let cross: Vec<_> = inp
        .wr
        .stalls
        .iter()
        .filter(|s| s.is_cross_invocation())
        .collect();
    if !cross.is_empty() {
        let _ = writeln!(
            h,
            "<p>Longest cross-invocation blocking chains (who stalled on whom):</p>\n<ul>"
        );
        let mut worst = cross.clone();
        worst.sort_by(|a, b| b.blocked_us.total_cmp(&a.blocked_us));
        for s in worst.iter().take(5) {
            let _ = writeln!(
                h,
                "<li>{} (invocation {}) blocked {:.2} µs on channel {} behind {} (invocation {})</li>",
                esc(inp.tfg.message(sr::tfg::MessageId(s.message as usize)).name()),
                s.invocation,
                s.blocked_us,
                s.channel,
                esc(inp
                    .tfg
                    .message(sr::tfg::MessageId(s.holder_message as usize))
                    .name()),
                s.holder_invocation
            );
        }
        h.push_str("</ul>\n");
    }
    h.push_str("</section>\n");
}

/// One inter-output-interval histogram as an inline SVG bar chart, with a
/// dashed marker at `τ_in`.
fn histogram_svg(h: &mut String, label: &str, r: &OiReport, period: f64) {
    const BINS: usize = 24;
    const HEIGHT: usize = 120;
    let _ = writeln!(
        h,
        "<h3>{} — δ histogram ({} intervals)</h3>",
        esc(label),
        r.intervals.len()
    );
    let lo = r
        .intervals
        .iter()
        .copied()
        .fold(period, f64::min)
        .min(period * 0.98);
    let hi = r
        .intervals
        .iter()
        .copied()
        .fold(period, f64::max)
        .max(period * 1.02);
    let span = (hi - lo).max(1e-9);
    let mut bins = [0usize; BINS];
    for &d in &r.intervals {
        let i = (((d - lo) / span) * BINS as f64) as usize;
        bins[i.min(BINS - 1)] += 1;
    }
    let peak = bins.iter().copied().max().unwrap_or(0).max(1);
    let _ = writeln!(
        h,
        "<svg class=\"histogram\" viewBox=\"0 0 {WIDTH} {}\">",
        HEIGHT + 20
    );
    let bar_w = (WIDTH - LABEL_W) as f64 / BINS as f64;
    for (i, &n) in bins.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let bh = HEIGHT as f64 * n as f64 / peak as f64;
        let x = LABEL_W as f64 + i as f64 * bar_w;
        let _ = writeln!(
            h,
            "<rect x=\"{x:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{bh:.1}\" fill=\"#4e79a7\">\
             <title>[{:.2}, {:.2}) µs: {n}</title></rect>",
            HEIGHT as f64 - bh,
            (bar_w - 1.0).max(0.5),
            lo + i as f64 * span / BINS as f64,
            lo + (i + 1) as f64 * span / BINS as f64
        );
    }
    // τ_in marker.
    let tx = LABEL_W as f64 + (period - lo) / span * (WIDTH - LABEL_W) as f64;
    let _ = writeln!(
        h,
        "<line x1=\"{tx:.1}\" y1=\"0\" x2=\"{tx:.1}\" y2=\"{HEIGHT}\" stroke=\"#e15759\" \
         stroke-dasharray=\"4 3\"/>"
    );
    let _ = writeln!(
        h,
        "<text x=\"{tx:.1}\" y=\"{}\" font-size=\"11\" text-anchor=\"middle\">τ_in = {:.2} µs</text>",
        HEIGHT + 14,
        period
    );
    let _ = writeln!(
        h,
        "<text x=\"0\" y=\"{}\" font-size=\"11\">peak bin = {peak}</text>",
        HEIGHT + 14
    );
    h.push_str("</svg>\n");
}

/// Extracts the tag skeleton of a rendered report: the document/section/
/// heading lines verbatim plus each `<svg class="…">` reduced to its class —
/// everything structural, nothing numeric. The golden structure test pins
/// this, so panel additions/removals are caught while timing values float.
pub fn structure(html: &str) -> String {
    let mut out = String::new();
    for line in html.lines() {
        let t = line.trim_start();
        if t.starts_with("<!DOCTYPE")
            || t.starts_with("<html")
            || t.starts_with("</html")
            || t.starts_with("<body")
            || t.starts_with("</body")
            || t.starts_with("<section")
            || t.starts_with("</section")
            || t.starts_with("<h1")
            || t.starts_with("<h2")
            || t.starts_with("</svg")
        {
            out.push_str(t);
            out.push('\n');
        } else if t.starts_with("<svg") {
            // Keep only the class; viewBox height varies with row count.
            let class = t
                .split("class=\"")
                .nth(1)
                .and_then(|r| r.split('"').next())
                .unwrap_or("?");
            let _ = writeln!(out, "<svg class=\"{class}\">");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_extracts_skeleton_only() {
        let html = "<!DOCTYPE html>\n<body>\n<section id=\"x\">\n<h2>T 12.5</h2>\n\
                    <svg class=\"gantt\" viewBox=\"0 0 940 77\">\n<rect x=\"1.5\"/>\n</svg>\n\
                    </section>\n</body>\n</html>\n";
        let s = structure(html);
        assert!(s.contains("<section id=\"x\">"));
        assert!(s.contains("<svg class=\"gantt\">"));
        assert!(!s.contains("viewBox"));
        assert!(!s.contains("rect"));
    }
}
