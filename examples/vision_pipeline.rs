//! The paper's headline scenario: the DARPA Vision Benchmark pipelined on a
//! 64-node binary 6-cube, comparing wormhole routing (output inconsistency)
//! against scheduled routing (constant throughput).
//!
//! ```text
//! cargo run --release --example vision_pipeline
//! ```

use sr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cube = GeneralizedHypercube::binary(6)?;
    let tfg = dvb_uniform(8); // 8 object models: 12 tasks, 20 messages
    let timing = Timing::calibrated_dvb(64.0); // τ_c = τ_m = 50 µs
    let alloc = sr::mapping::random_distinct(&tfg, &cube, 7)?;

    let tau_c = timing.longest_task(&tfg);
    let critical = timing.critical_path(&tfg);
    println!(
        "DVB: {} tasks, {} messages; τ_c = {tau_c} µs, Λ = {critical} µs on {}",
        tfg.num_tasks(),
        tfg.num_messages(),
        cube.name()
    );

    println!("\n| load | WR δ_out min/mean/max (µs) | WR OI | SR |");
    println!("|---|---|---|---|");
    for load in [0.25, 0.5, 0.75, 1.0] {
        let period = tau_c / load;

        let wr = WormholeSim::new(&cube, &tfg, &alloc, &timing)?;
        let res = wr.run(period, &SimConfig::default())?;
        let ints = res.interval_stats();

        let sr = compile(
            &cube,
            &tfg,
            &alloc,
            &timing,
            period,
            &CompileConfig::default(),
        );
        let sr_cell = match &sr {
            Ok(s) => {
                verify(s, &cube, &tfg)?;
                format!("constant δ = {period:.0} µs, latency {:.0} µs", s.latency())
            }
            Err(e) => format!("{e}"),
        };
        println!(
            "| {load:.2} | {:.1}/{:.1}/{:.1} | {} | {} |",
            ints.min,
            ints.mean,
            ints.max,
            res.has_output_inconsistency(1e-6),
            sr_cell
        );
    }

    // Drill into one saturated run: show the per-invocation output
    // intervals wormhole routing produces.
    let period = tau_c / 0.75;
    let wr = WormholeSim::new(&cube, &tfg, &alloc, &timing)?;
    let res = wr.run(period, &SimConfig::default())?;
    println!("\nWR output intervals at load 0.75 (τ_in = {period:.1} µs):");
    let ints = res.output_intervals();
    for (i, d) in ints.iter().take(16).enumerate() {
        println!("  δ_{:<2} = {d:>7.1} µs", i + 1);
    }
    Ok(())
}
