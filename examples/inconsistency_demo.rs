//! A minimal reconstruction of the paper's §3 *Claim*: when two messages of
//! different invocations share a link under wormhole routing's FCFS
//! arbitration, the pipeline's output intervals alternate — **output
//! inconsistency** — even though the average throughput may be fine.
//!
//! Scheduled routing removes it by rerouting one message over an equivalent
//! path and pinning both to clear-path windows at compile time.
//!
//! ```text
//! cargo run --example inconsistency_demo
//! ```

use sr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Claim's cast: M1 : T1s -> T1d and M2 : T2s -> T2d with
    // T1d ⪯ T2s, all four tasks on the critical path.
    let tfg = sr::tfg::generators::claim_chain(1000, 6400, 64);
    let timing = Timing::new(64.0, 100.0); // tasks 10 µs, big messages 100 µs

    // Placement on a 3-cube such that M1 (N0->N1) and M2 (N0->N3) share
    // the directed channel N0->N1 under dimension-order routing
    // (N0->N1->N3), while the equivalent route N0->N2->N3 stays free.
    let cube = GeneralizedHypercube::binary(3)?;
    let alloc = Allocation::new(
        vec![NodeId(0), NodeId(1), NodeId(0), NodeId(3)],
        &tfg,
        &cube,
    )?;

    let period = 120.0;
    println!("τ_in = {period} µs; M1 and M2 both need 100 µs of link time.\n");

    // --- Wormhole routing ---
    let wr = WormholeSim::new(&cube, &tfg, &alloc, &timing)?;
    let res = wr.run(
        period,
        &SimConfig {
            invocations: 30,
            warmup: 4,
        },
    )?;
    println!("wormhole routing output intervals (should all equal τ_in):");
    for (i, d) in res.output_intervals().iter().take(10).enumerate() {
        println!("  δ_{:<2} = {d:>6.1} µs", i + 1);
    }
    println!(
        "  -> output inconsistency: {}",
        res.has_output_inconsistency(1e-6)
    );
    // The mechanism behind the inconsistency, in one line: FCFS arbitration
    // makes the per-flight blocked time a distribution, not a constant.
    if let Some(b) = res.trace().blocked_summary() {
        println!(
            "  -> blocked time over {} flights: p50 {:.1} µs, p95 {:.1} µs, max {:.1} µs\n",
            b.count, b.p50, b.p95, b.max
        );
    }

    // --- Scheduled routing ---
    let sched = compile(
        &cube,
        &tfg,
        &alloc,
        &timing,
        period,
        &CompileConfig::default(),
    )?;
    verify(&sched, &cube, &tfg)?;
    println!("scheduled routing: compiled and verified.");
    for (id, msg) in tfg.iter_messages() {
        let path = sched.assignment().path(id);
        if path.hops() > 0 {
            println!("  {:<5} routed {}", msg.name(), path);
        }
    }
    println!(
        "  -> constant δ = {period} µs, latency {:.1} µs, U = {:.2}",
        sched.latency(),
        sched.peak_utilization()
    );
    Ok(())
}
