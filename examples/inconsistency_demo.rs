//! A minimal reconstruction of the paper's §3 *Claim*: when two messages of
//! different invocations share a link under wormhole routing's FCFS
//! arbitration, the pipeline's output intervals alternate — **output
//! inconsistency** — even though the average throughput may be fine.
//!
//! Scheduled routing removes it by rerouting one message over an equivalent
//! path and pinning both to clear-path windows at compile time.
//!
//! ```text
//! cargo run --example inconsistency_demo
//! ```

use sr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Claim's cast: M1 : T1s -> T1d and M2 : T2s -> T2d with
    // T1d ⪯ T2s, all four tasks on the critical path.
    let tfg = sr::tfg::generators::claim_chain(1000, 6400, 64);
    let timing = Timing::new(64.0, 100.0); // tasks 10 µs, big messages 100 µs

    // Placement on a 3-cube such that M1 (N0->N1) and M2 (N0->N3) share
    // the directed channel N0->N1 under dimension-order routing
    // (N0->N1->N3), while the equivalent route N0->N2->N3 stays free.
    let cube = GeneralizedHypercube::binary(3)?;
    let alloc = Allocation::new(
        vec![NodeId(0), NodeId(1), NodeId(0), NodeId(3)],
        &tfg,
        &cube,
    )?;

    let period = 120.0;
    println!("τ_in = {period} µs; M1 and M2 both need 100 µs of link time.\n");

    let cfg = SimConfig {
        invocations: 30,
        warmup: 4,
    };

    // --- Wormhole routing, with the event stream captured ---
    let wr = WormholeSim::new(&cube, &tfg, &alloc, &timing)?;
    let sink = RingEventSink::with_capacity(1 << 14);
    let res = wr.run_with_events(period, &cfg, &sink)?;
    println!("wormhole routing output intervals (should all equal τ_in):");
    for (i, d) in res.output_intervals().iter().take(10).enumerate() {
        println!("  δ_{:<2} = {d:>6.1} µs", i + 1);
    }
    // The OI analyzer reconstructs the distribution from the event stream
    // and attributes each stall to the earlier-invocation message that held
    // the channel — the Claim's mechanism, named.
    let oi = analyze_oi(&sink.events(), period, cfg.warmup);
    println!("\n{}", oi.render());

    // --- Scheduled routing ---
    let sched = compile(
        &cube,
        &tfg,
        &alloc,
        &timing,
        period,
        &CompileConfig::default(),
    )?;
    verify(&sched, &cube, &tfg)?;
    println!("scheduled routing: compiled and verified.");
    for (id, msg) in tfg.iter_messages() {
        let path = sched.assignment().path(id);
        if path.hops() > 0 {
            println!("  {:<5} routed {}", msg.name(), path);
        }
    }
    println!(
        "  -> latency {:.1} µs, U = {:.2}",
        sched.latency(),
        sched.peak_utilization()
    );
    // Same analyzer, same τ_in, over the schedule's replayed event stream:
    // every interval is exactly the input period.
    let replay = replay_events(&sched, &tfg, &timing, cfg.invocations)?;
    let oi = analyze_oi(&replay, period, cfg.warmup);
    println!("\n{}", oi.render());
    Ok(())
}
