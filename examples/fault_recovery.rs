//! Fault injection and incremental schedule repair: a link dies under a
//! compiled real-time pipeline and the schedule is repaired in place — only
//! the affected messages move, every other node keeps its switching schedule
//! Ω bit-for-bit.
//!
//! ```text
//! cargo run --example fault_recovery
//! ```

use sr::prelude::*;
use sr::tfg::MessageId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let torus = Torus::new(&[4, 4])?;
    let tfg = dvb_uniform(8);
    let timing = Timing::calibrated_dvb(128.0);
    let alloc = sr::mapping::random_distinct(&tfg, &torus, 7)?;
    let period = timing.longest_task(&tfg) / 0.5;

    // Compile with 10% spare capacity held back: the ε headroom is what the
    // repair later packs re-routed traffic into.
    let config = CompileConfig {
        spare_capacity: 0.1,
        ..CompileConfig::default()
    };
    let schedule = compile(&torus, &tfg, &alloc, &timing, period, &config)?;
    verify(&schedule, &torus, &tfg)?;
    println!(
        "compiled: period {period} µs on {}, U = {:.3} (ε = 0.1 reserved)\n",
        torus.name(),
        schedule.peak_utilization()
    );

    // A link carrying scheduled traffic fails.
    let dead = (0..tfg.num_messages())
        .map(MessageId)
        .find_map(|m| schedule.assignment().links(m).first().copied())
        .expect("some message crosses a link");
    let (a, b) = torus.link_endpoints(dead);
    let faults = FaultSet::new().fail_link(dead);
    println!("fault: {dead} ({a}->{b}) fails");

    let report = analyze_damage(&schedule, &faults);
    println!(
        "damage: {} affected, {} unaffected, {} lost",
        report.affected.len(),
        report.unaffected.len(),
        report.lost.len()
    );

    // Incremental repair: re-route the affected messages over the surviving
    // network, pinning everything else.
    let outcome = repair(
        &schedule,
        &torus,
        &tfg,
        &timing,
        &faults,
        &RepairConfig::default(),
    );
    println!(
        "repair: {} ({} rerouted, {} demoted, {} dropped)",
        outcome.verdict,
        outcome.rerouted.len(),
        outcome.demoted.len(),
        outcome.dropped.len()
    );
    let repaired = outcome.schedule.as_ref().expect("one dead link repairs");
    verify_with_faults(repaired, &torus, &tfg, &faults)?;
    println!(
        "verified on the surviving network; U = {:.3}",
        repaired.peak_utilization()
    );

    for &m in &outcome.rerouted {
        println!(
            "  {:>10}: {}  ->  {}",
            tfg.message(m).name(),
            schedule.assignment().path(m),
            repaired.assignment().path(m)
        );
    }
    let untouched = report
        .unaffected
        .iter()
        .all(|&m| schedule.allocation().row(m) == repaired.allocation().row(m));
    println!("unaffected allocations bit-identical: {untouched}\n");

    // How would the repair fare as failures accumulate?
    println!("random link-failure sweep (8 draws per k):");
    println!("k  unchanged repaired degraded infeasible feasible%");
    for p in sweep_link_failures(&schedule, &torus, &tfg, &timing, &SweepConfig::default()) {
        println!(
            "{}  {:>9} {:>8} {:>8} {:>10} {:>8.0}",
            p.k,
            p.unchanged,
            p.repaired,
            p.degraded,
            p.infeasible,
            p.feasible_fraction() * 100.0
        );
    }
    Ok(())
}
