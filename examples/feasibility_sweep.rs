//! Sweep the input arrival rate and find the feasibility boundary of
//! scheduled routing on each of the paper's four 64-node topologies:
//! the highest load at which a contention-free schedule Ω exists.
//!
//! This is the compile-time predictability the paper emphasizes: the system
//! *knows before running* whether the network can sustain a period.
//!
//! ```text
//! cargo run --release --example feasibility_sweep [bandwidth]
//! ```

use sr::prelude::*;

fn sweep(name: &str, topo: &dyn Topology, bandwidth: f64) {
    let tfg = dvb_uniform(8);
    let timing = Timing::calibrated_dvb(bandwidth);
    let alloc = sr::mapping::random_distinct(&tfg, topo, 7).expect("fits");
    let tau_c = timing.longest_task(&tfg);

    print!("{name:<22} B={bandwidth:<4}");
    let mut boundary = None;
    for i in 0..=16 {
        let load = 0.2 + 0.05 * i as f64;
        if load > 1.0 {
            break;
        }
        let period = tau_c / load;
        if compile(
            topo,
            &tfg,
            &alloc,
            &timing,
            period,
            &CompileConfig::default(),
        )
        .is_ok()
        {
            boundary = Some(load)
        }
    }
    match boundary {
        Some(l) => println!(" feasible up to load {l:.2}"),
        None => println!(" no feasible load (network too weak for this TFG)"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bandwidth: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(128.0);

    let cube6 = GeneralizedHypercube::binary(6)?;
    let ghc = GeneralizedHypercube::new(&[4, 4, 4])?;
    let t88 = Torus::new(&[8, 8])?;
    let t444 = Torus::new(&[4, 4, 4])?;

    println!("scheduled-routing feasibility boundary (DVB, 8 models):\n");
    sweep("binary 6-cube", &cube6, bandwidth);
    sweep("GHC(4,4,4)", &ghc, bandwidth);
    sweep("8x8 torus", &t88, bandwidth);
    sweep("4x4x4 torus", &t444, bandwidth);
    println!(
        "\n(richer topologies and higher bandwidth push the boundary right;\n\
         rerun with a bandwidth argument, e.g. 64)"
    );
    Ok(())
}
