//! Quickstart: compile a contention-free communication schedule for a small
//! pipelined task graph and inspect what each communication processor will
//! execute.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the application as a task-flow graph: a 4-stage video
    //    pipeline processing one frame per period.
    let mut b = TfgBuilder::new();
    let grab = b.task("grab", 2_000);
    let filter = b.task("filter", 4_000);
    let detect = b.task("detect", 4_000);
    let report = b.task("report", 1_000);
    b.message("raw", grab, filter, 4_096)?;
    b.message("clean", filter, detect, 4_096)?;
    b.message("boxes", detect, report, 512)?;
    b.message("thumb", grab, report, 1_024)?; // skip edge
    let tfg = b.build()?;

    // 2. Pick a machine: a 16-node binary hypercube with 64-byte/µs links
    //    and 100-op/µs processors.
    let cube = GeneralizedHypercube::binary(4)?;
    let timing = Timing::new(64.0, 100.0);

    // 3. Map tasks to nodes (greedy locality here; see `sr::mapping`).
    let alloc = sr::mapping::greedy(&tfg, &cube);
    for (id, task) in tfg.iter_tasks() {
        println!("task {:<7} -> {}", task.name(), alloc.node_of(id));
    }

    // 4. Compile a scheduled-routing communication schedule for pipelining
    //    at an input period of 100 µs (longest task takes 40 µs; the raw
    //    frame takes 64 µs on the wire).
    let period = 100.0;
    let schedule = compile(
        &cube,
        &tfg,
        &alloc,
        &timing,
        period,
        &CompileConfig::default(),
    )?;
    verify(&schedule, &cube, &tfg)?;

    println!(
        "\ncompiled: period {} µs, latency {:.1} µs, peak utilization {:.2}",
        schedule.period(),
        schedule.latency(),
        schedule.peak_utilization()
    );

    // 5. Every message gets clear-path transmission windows…
    println!("\nmessage segments (one period frame):");
    for seg in schedule.segments() {
        let msg = tfg.message(seg.message);
        println!(
            "  {:<6} [{:>6.1}, {:>6.1}] µs over {}",
            msg.name(),
            seg.start,
            seg.end,
            schedule.assignment().path(seg.message)
        );
    }

    // 6. …realized by crossbar commands each node executes independently.
    println!("\nswitching schedules (non-idle nodes):");
    for ns in schedule.node_schedules() {
        if ns.is_idle() {
            continue;
        }
        println!("  {}:", ns.node());
        for c in ns.commands() {
            println!(
                "    [{:>6.1}, {:>6.1}] {:?} -> {:?}  ({})",
                c.start,
                c.end,
                c.connection.from,
                c.connection.to,
                tfg.message(c.message).name()
            );
        }
    }
    Ok(())
}
