//! The §7 synchronization study, end to end: simulate CP clock drift and a
//! periodic spanning-tree sync protocol, size the guard time by the paper's
//! "twice the maximum clock difference" rule, and compile the DVB schedule
//! with that guard — measuring what synchronization tightness costs.
//!
//! ```text
//! cargo run --release --example clock_sync
//! ```

use sr::prelude::*;
use sr::sync::{simulate_sync, ClockEnsemble, SyncConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cube = GeneralizedHypercube::binary(6)?;
    let tfg = dvb_uniform(10);
    let timing = Timing::calibrated_dvb(128.0);
    let alloc = sr::mapping::random_distinct(&tfg, &cube, 7)?;
    let period = timing.longest_task(&tfg) / 0.8;

    // 64 CPs with ±50 ppm oscillators and up to ±5 µs initial offset.
    let clocks = ClockEnsemble::random(64, 1, 50.0, 5.0);
    println!(
        "uncorrected clock skew at t = 1 s: {:.1} µs — unusable without sync\n",
        clocks.raw_skew(1e6)
    );

    println!("| sync interval (µs) | max skew (µs) | guard 2×skew (µs) | schedule |");
    println!("|---|---|---|---|");
    for interval in [100.0, 1_000.0, 10_000.0, 100_000.0] {
        let cfg = SyncConfig {
            interval,
            ..SyncConfig::default()
        };
        let outcome = simulate_sync(&cube, NodeId(0), &clocks, &cfg, 30, 9);
        let guard = outcome.required_guard();
        let compile_config = CompileConfig {
            guard_time: guard,
            ..CompileConfig::default()
        };
        let cell = match compile(&cube, &tfg, &alloc, &timing, period, &compile_config) {
            Ok(s) => {
                verify(&s, &cube, &tfg)?;
                format!("ok, latency {:.1} µs", s.latency())
            }
            Err(e) => format!("{e}"),
        };
        println!(
            "| {interval:>8.0} | {:.3} | {guard:.3} | {cell} |",
            outcome.max_skew()
        );
    }
    println!(
        "\nLooser synchronization costs guard time on every slice; past some point\n\
         the intervals stop fitting — exactly the §7 trade the paper flags."
    );
    Ok(())
}
