//! A second real-time domain on the same machinery: a radar processing
//! chain (pulse compression → Doppler filtering → CFAR detection → tracking)
//! with an image-pyramid clutter map running beside it, defined in the
//! `.tfg` text format, mapped by §7 co-design, and compiled at the maximum
//! sustainable rate.
//!
//! ```text
//! cargo run --release --example radar_pipeline
//! ```

use sr::core::{co_design, find_min_period};
use sr::prelude::*;

const RADAR_TFG: &str = r"
# Radar front-end: 4-stage chain per burst, plus a clutter-map side pyramid.
task pulse    1800
task doppler  1925
task cfar     1500
task track    900

msg rng_gates pulse   -> doppler 2048
msg dopp_map  doppler -> cfar    2048
msg plots     cfar    -> track   512

# Clutter pyramid: two tiles reduced into the CFAR stage.
task tile0 800
task tile1 800
task reduce 600
msg t0 tile0 -> reduce 1024
msg t1 tile1 -> reduce 1024
msg clutter reduce -> cfar 768
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tfg = sr::tfg::from_text(RADAR_TFG)?;
    println!(
        "radar TFG: {} tasks, {} messages\n{}",
        tfg.num_tasks(),
        tfg.num_messages(),
        tfg.to_dot("radar")
            .lines()
            .take(3)
            .collect::<Vec<_>>()
            .join("\n")
    );

    let mesh = sr::topology::Mesh::new(&[4, 4])?; // a 16-node mesh card
    let timing = Timing::new(64.0, 40.0);
    let period_hint = timing.longest_task(&tfg) * 2.0;

    // §7 co-design: place tasks for schedulability, not just locality.
    let start = sr::mapping::random_distinct(&tfg, &mesh, 3)?;
    let designed = co_design(
        &mesh,
        &tfg,
        &timing,
        period_hint,
        start,
        60,
        3,
        &CompileConfig::default(),
    );
    println!(
        "\nco-design: effective peak utilization {:.3} after {} accepted moves",
        designed.utilization, designed.moves_accepted
    );

    // Find the fastest sustainable burst rate on this card.
    let r = find_min_period(
        &mesh,
        &tfg,
        &designed.allocation,
        &timing,
        timing.longest_task(&tfg) * 8.0,
        0.25,
        &CompileConfig::default(),
    )?;
    println!(
        "minimum burst period: {:.2} µs ({:.1} kHz), latency {:.1} µs",
        r.period,
        1000.0 / r.period,
        r.schedule.latency()
    );
    verify(&r.schedule, &mesh, &tfg)?;

    // Show the busiest links' timelines at that rate.
    println!("\nbusiest link timelines at the maximum rate:");
    print!("{}", r.schedule.render_timelines(&mesh, 64));
    Ok(())
}
