//! Best-effort traffic over a compiled real-time schedule (paper §7: "the
//! suitability of SR to cases where complete knowledge of the application is
//! not available should also be studied").
//!
//! A compiled schedule determines every link's busy intervals exactly, so
//! aperiodic messages can be admitted online into provably idle windows
//! without disturbing the real-time pipeline.
//!
//! ```text
//! cargo run --example best_effort
//! ```

use sr::core::admit_best_effort;
use sr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cube = GeneralizedHypercube::binary(4)?;
    let tfg = sr::tfg::generators::diamond(4, 2000, 2048);
    let timing = Timing::new(64.0, 100.0);
    let alloc = sr::mapping::greedy(&tfg, &cube);
    let period = 60.0;

    let schedule = compile(
        &cube,
        &tfg,
        &alloc,
        &timing,
        period,
        &CompileConfig::default(),
    )?;
    verify(&schedule, &cube, &tfg)?;
    println!(
        "real-time pipeline compiled: period {period} µs, {} segments\n",
        schedule.segments().len()
    );

    // How much capacity is left?
    println!("link idle fractions (busiest first):");
    let mut idle: Vec<(LinkId, f64)> = (0..cube.num_links())
        .map(|l| (LinkId(l), schedule.link_idle_fraction(LinkId(l))))
        .collect();
    idle.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (l, f) in idle.iter().take(5) {
        let (a, b) = cube.link_endpoints(*l);
        println!("  {l} ({a}-{b}): {:.0}% idle", f * 100.0);
    }

    // Admit a burst of aperiodic transfers.
    println!("\nbest-effort admissions:");
    for (src, dst, bytes) in [
        (NodeId(0), NodeId(15), 1024u64),
        (NodeId(3), NodeId(12), 2048),
        (NodeId(7), NodeId(8), 512),
        (NodeId(1), NodeId(14), 3000),
    ] {
        match admit_best_effort(&schedule, &cube, &timing, src, dst, bytes, 32) {
            Some(grant) => println!(
                "  {src}->{dst} {bytes:>5} B: [{:>6.2}, {:>6.2}] µs via {}",
                grant.start,
                grant.end(),
                grant.path
            ),
            None => println!("  {src}->{dst} {bytes:>5} B: refused (no idle window this frame)"),
        }
    }
    Ok(())
}
